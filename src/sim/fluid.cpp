#include "sim/fluid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/engine.h"
#include "stats/profiler.h"
#include "stats/telemetry.h"
#include "util/fmt.h"
#include "util/log.h"

namespace elastisim::sim {

namespace {
// Tolerances for the progressive-filling freeze decisions. Relative where
// possible so that simulations in FLOP/s (1e12) and bytes/s (1e9) behave
// identically.
constexpr double kRelEps = 1e-9;
constexpr double kAbsEps = 1e-12;

bool leq_tol(double a, double b) { return a <= b * (1.0 + kRelEps) + kAbsEps; }
}  // namespace

ResourceId FluidModel::add_resource(std::string name, double capacity) {
  assert(capacity >= 0.0 && "resource capacity must be non-negative");
  resources_.push_back(Resource{std::move(name), capacity, 0.0});
  return static_cast<ResourceId>(resources_.size() - 1);
}

void FluidModel::set_capacity(ResourceId resource, double capacity) {
  assert(resource < resources_.size());
  assert(capacity >= 0.0);
  settle();
  resources_[resource].capacity = capacity;
  rebalance();
}

double FluidModel::capacity(ResourceId resource) const {
  assert(resource < resources_.size());
  return resources_[resource].capacity;
}

const std::string& FluidModel::resource_name(ResourceId resource) const {
  assert(resource < resources_.size());
  return resources_[resource].name;
}

double FluidModel::consumption(ResourceId resource) const {
  assert(resource < resources_.size());
  return resources_[resource].consumption;
}

ActivityId FluidModel::start(ActivitySpec spec, std::function<void()> on_complete) {
  for (const Demand& demand : spec.demands) {
    assert(demand.resource < resources_.size() && "demand references unknown resource");
    assert(demand.weight > 0.0 && "demand weight must be positive");
  }
  assert((!spec.demands.empty() || std::isfinite(spec.rate_cap)) &&
         "an activity without demands needs a finite rate cap");
  assert(spec.rate_cap > 0.0 && "rate cap must be positive");

  settle();
  const ActivityId id = next_activity_id_++;
  Activity activity;
  activity.remaining = std::max(spec.work, 0.0);
  activity.spec = std::move(spec);
  activity.on_complete = std::move(on_complete);
  activities_.emplace(id, std::move(activity));
  order_.push_back(id);
  rebalance();
  return id;
}

bool FluidModel::cancel(ActivityId id) {
  auto it = activities_.find(id);
  if (it == activities_.end()) return false;
  settle();
  if (it->second.completion_event != kInvalidEventId) {
    engine_->cancel(it->second.completion_event);
  }
  activities_.erase(it);
  order_.erase(std::find(order_.begin(), order_.end(), id));
  rebalance();
  return true;
}

bool FluidModel::is_active(ActivityId id) const { return activities_.count(id) > 0; }

double FluidModel::remaining_work(ActivityId id) const {
  auto it = activities_.find(id);
  if (it == activities_.end()) return 0.0;  // completed, cancelled, or unknown
  const Activity& activity = it->second;
  const double elapsed = engine_->now() - last_settle_;
  return std::max(0.0, activity.remaining - activity.rate * elapsed);
}

double FluidModel::rate(ActivityId id) const {
  auto it = activities_.find(id);
  if (it == activities_.end()) return 0.0;  // completed, cancelled, or unknown
  return it->second.rate;
}

std::optional<std::string> FluidModel::check_invariants() const {
  if (order_.size() != activities_.size()) {
    return util::fmt("fluid model: {} activities in insertion order but {} in the table",
                     order_.size(), activities_.size());
  }
  for (ActivityId id : order_) {
    const auto it = activities_.find(id);
    if (it == activities_.end()) {
      return util::fmt("fluid model: activity {} in insertion order but not in the table",
                       id);
    }
    const Activity& activity = it->second;
    const char* label =
        activity.spec.label.empty() ? "<unnamed>" : activity.spec.label.c_str();
    if (!(activity.remaining >= 0.0)) {
      return util::fmt("fluid activity '{}' has negative remaining work {}", label,
                       activity.remaining);
    }
    if (activity.spec.work > 0.0 &&
        activity.remaining > activity.spec.work * (1.0 + kRelEps) + kAbsEps) {
      return util::fmt("fluid activity '{}' progress outside [0, 1]: remaining {} of {}",
                       label, activity.remaining, activity.spec.work);
    }
    if (!(activity.rate >= 0.0) || !std::isfinite(activity.rate)) {
      return util::fmt("fluid activity '{}' has invalid rate {}", label, activity.rate);
    }
    if (std::isfinite(activity.spec.rate_cap) &&
        activity.rate > activity.spec.rate_cap * (1.0 + kRelEps) + kAbsEps) {
      return util::fmt("fluid activity '{}' rate {} exceeds its cap {}", label,
                       activity.rate, activity.spec.rate_cap);
    }
  }
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    const Resource& resource = resources_[r];
    if (!leq_tol(resource.consumption, resource.capacity)) {
      return util::fmt("fluid resource '{}' oversubscribed: consumption {} > capacity {}",
                       resource.name, resource.consumption, resource.capacity);
    }
  }
  return std::nullopt;
}

// elsim-hot: runs before every rate change; touches every live activity.
void FluidModel::settle() {
  // Deliberately unscoped: settle runs ~once per solve and its own time is a
  // fraction of a percent of a run, so a scope here would cost more than the
  // attribution is worth. Settle time bills to the enclosing phase (usually
  // fluid.solve or engine.dispatch); Phase::kFluidSettle stays in the schema
  // for call sites that want to opt a hot path back in.
  const SimTime now = engine_->now();
  const double elapsed = now - last_settle_;
  if (elapsed > 0.0) {
    for (ActivityId id : order_) {
      Activity& activity = activities_.at(id);
      activity.remaining = std::max(0.0, activity.remaining - activity.rate * elapsed);
    }
  }
  last_settle_ = now;
}

// elsim-hot: the progressive-filling solve; reruns on every share change.
void FluidModel::rebalance() {
  ELSIM_PROFILE_SCOPE(stats::profiler::Phase::kFluidSolve);
  ++rebalance_count_;
  activities_touched_ += order_.size();
  if (telemetry::enabled() && !rebalance_hist_) {
    rebalance_hist_ = &telemetry::Registry::global().histogram("fluid.rebalance_seconds");
  }
  telemetry::ScopedTimer timer(telemetry::enabled() ? rebalance_hist_ : nullptr);

  // Working state for progressive filling, kept in member scratch buffers so
  // steady-state solves do not allocate.
  std::vector<double>& avail = scratch_avail_;
  std::vector<double>& weight_sum = scratch_weight_sum_;
  avail.assign(resources_.size(), 0.0);
  weight_sum.assign(resources_.size(), 0.0);
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    avail[r] = resources_[r].capacity;
    resources_[r].consumption = 0.0;
  }

  std::vector<ActivityId>& unfrozen = scratch_unfrozen_;
  unfrozen.clear();
  unfrozen.reserve(order_.size());
  for (ActivityId id : order_) {
    Activity& activity = activities_.at(id);
    if (activity.spec.demands.empty()) {
      // No shared resources: runs at its cap unconditionally.
      activity.rate = activity.spec.rate_cap;
      continue;
    }
    unfrozen.push_back(id);
    for (const Demand& demand : activity.spec.demands) {
      weight_sum[demand.resource] += demand.weight;
    }
  }

  // Progressive filling: raise a common water level; freeze activities at
  // their cap or when a resource they use saturates.
  while (!unfrozen.empty()) {
    double lambda_res = kTimeInfinity;
    for (std::size_t r = 0; r < resources_.size(); ++r) {
      if (weight_sum[r] > kAbsEps) {
        lambda_res = std::min(lambda_res, std::max(avail[r], 0.0) / weight_sum[r]);
      }
    }
    double lambda_cap = kTimeInfinity;
    for (ActivityId id : unfrozen) {
      lambda_cap = std::min(lambda_cap, activities_.at(id).spec.rate_cap);
    }
    const double lambda = std::min(lambda_res, lambda_cap);

    // Identify the freeze set at this level; subtract each frozen activity's
    // consumption from the pools as it freezes (single pass, no membership
    // lookups).
    std::vector<ActivityId>& still_unfrozen = scratch_next_unfrozen_;
    still_unfrozen.clear();
    still_unfrozen.reserve(unfrozen.size());
    std::size_t frozen_this_round = 0;
    const bool cap_binding = lambda_cap <= lambda_res;
    for (ActivityId id : unfrozen) {
      Activity& activity = activities_.at(id);
      bool freeze = false;
      if (cap_binding) {
        freeze = leq_tol(activity.spec.rate_cap, lambda);
      } else {
        for (const Demand& demand : activity.spec.demands) {
          const double share = std::max(avail[demand.resource], 0.0) /
                               std::max(weight_sum[demand.resource], kAbsEps);
          if (leq_tol(share, lambda)) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        activity.rate = std::min(lambda, activity.spec.rate_cap);
        for (const Demand& demand : activity.spec.demands) {
          avail[demand.resource] -= demand.weight * activity.rate;
          weight_sum[demand.resource] -= demand.weight;
        }
        ++frozen_this_round;
      } else {
        still_unfrozen.push_back(id);
      }
    }
    if (frozen_this_round == 0) {
      // Numerical corner: make progress by freezing everything at lambda.
      for (ActivityId id : still_unfrozen) {
        Activity& activity = activities_.at(id);
        activity.rate = std::min(lambda, activity.spec.rate_cap);
      }
      break;
    }
    unfrozen.swap(still_unfrozen);  // ping-pong the scratch buffers, no realloc
  }

  // Refresh per-resource consumption and reschedule completion events.
  for (ActivityId id : order_) {
    Activity& activity = activities_.at(id);
    for (const Demand& demand : activity.spec.demands) {
      resources_[demand.resource].consumption += demand.weight * activity.rate;
    }
    schedule_completion(id, activity);
  }
}

void FluidModel::schedule_completion(ActivityId id, Activity& activity) {
  if (activity.completion_event != kInvalidEventId) {
    engine_->cancel(activity.completion_event);
    activity.completion_event = kInvalidEventId;
  }
  SimTime finish;
  if (activity.remaining <= kWorkEpsilon) {
    finish = engine_->now();
  } else if (activity.rate > 0.0) {
    finish = engine_->now() + activity.remaining / activity.rate;
  } else {
    return;  // stalled: no completion until a rebalance grants a rate
  }
  activity.completion_event =
      engine_->schedule_at(finish, [this, id] { on_activity_complete(id); });
}

void FluidModel::on_activity_complete(ActivityId id) {
  auto it = activities_.find(id);
  if (it == activities_.end()) return;  // raced with cancel (should not happen)
  settle();
  ELSIM_TRACE("activity '{}' complete at t={}", it->second.spec.label, engine_->now());
  std::function<void()> callback = std::move(it->second.on_complete);
  activities_.erase(it);
  order_.erase(std::find(order_.begin(), order_.end(), id));
  rebalance();
  if (callback) callback();
}

}  // namespace elastisim::sim
