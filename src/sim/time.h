// Simulation time base.
//
// Simulated time is a double in seconds since simulation start. The epsilon
// below bounds the rounding error we tolerate when comparing times or
// remaining work; the fluid model re-derives completion instants from rates,
// so exact equality is never required.
#pragma once

#include <cmath>
#include <limits>

namespace elastisim::sim {

using SimTime = double;

inline constexpr SimTime kTimeEpsilon = 1e-9;
inline constexpr double kWorkEpsilon = 1e-6;
inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::infinity();

inline bool time_close(SimTime a, SimTime b) noexcept { return std::abs(a - b) <= kTimeEpsilon; }

}  // namespace elastisim::sim
