// Cooperative cancellation for simulation runs.
//
// A CancellationToken is shared between the thread driving an Engine and a
// controller (a sweep watchdog, a SIGINT handler): the controller calls
// cancel() with a reason, the engine checks cancelled() between events and
// stops dispatching, and the run surfaces as *partial* rather than being
// torn down mid-callback. The engine also publishes its progress (events
// dispatched, simulated time) through the token, which is what a stall
// watchdog samples to tell "slow" from "livelocked".
//
// All members are relaxed atomics: cancel() is safe to call from a signal
// handler or another thread, and the per-event cost on the engine side is
// two uncontended stores.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace elastisim::sim {

/// Why a run was asked to stop; kNone while the run is live.
enum class CancelReason : int {
  kNone = 0,
  /// The run exceeded its wall-clock budget.
  kTimeout,
  /// The run stopped making event/simulated-time progress.
  kStalled,
  /// SIGINT/SIGTERM or an explicit operator request.
  kInterrupted,
};

std::string to_string(CancelReason reason);

class CancellationToken {
 public:
  /// Requests the run to stop. The first reason wins; later calls keep the
  /// original. Async-signal-safe (lock-free atomic stores only).
  void cancel(CancelReason reason = CancelReason::kInterrupted) {
    int expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_relaxed);
  }

  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  CancelReason reason() const {
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

  /// Called by the engine after each dispatched event. Watchdogs read the
  /// counters back; a value that stops changing is a stall.
  void note_progress(std::uint64_t events, double sim_time) {
    events_.store(events, std::memory_order_relaxed);
    sim_time_.store(sim_time, std::memory_order_relaxed);
  }

  std::uint64_t events() const { return events_.load(std::memory_order_relaxed); }
  double sim_time() const { return sim_time_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int> reason_{0};
  std::atomic<std::uint64_t> events_{0};
  std::atomic<double> sim_time_{0.0};
};

}  // namespace elastisim::sim
