// Fluid resource-sharing model (the SimGrid-LMM substitute).
//
// Resources have finite capacities (a node's FLOP/s, a link's bytes/s, the
// PFS's aggregate bytes/s). Activities carry a total amount of work and a
// set of weighted demands on resources: an activity progressing at rate x
// consumes weight*x of each resource it touches. Rates are assigned by
// *bounded max-min fairness* via progressive filling: a common "water level"
// rises until either a resource saturates (freezing the activities through
// it) or an activity reaches its rate cap.
//
// Whenever the active set changes, the model settles accrued progress,
// recomputes all rates, and reschedules each activity's completion event on
// the engine. This reproduces the contention-aware completion times that the
// original system obtains from SimGrid's fluid models.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace elastisim::telemetry {
class Histogram;
}  // namespace elastisim::telemetry

namespace elastisim::sim {

class Engine;

using ResourceId = std::uint32_t;
using ActivityId = std::uint64_t;
inline constexpr ActivityId kInvalidActivityId = 0;

/// One weighted demand: the owning activity at rate x consumes weight*x of
/// this resource.
struct Demand {
  ResourceId resource;
  double weight = 1.0;
};

/// Immutable-per-start description of an activity.
struct ActivitySpec {
  /// Total work in resource units (FLOPs for compute, bytes for transfers).
  double work = 0.0;
  /// Weighted demands; may be empty, in which case the activity progresses
  /// at exactly `rate_cap` (which must then be finite and positive).
  std::vector<Demand> demands;
  /// Upper bound on the activity's rate (e.g. a rank cannot exceed the speed
  /// of the cores it owns). Infinity means unbounded.
  double rate_cap = kTimeInfinity;
  /// Debug label surfaced in traces and error messages.
  std::string label;
};

class FluidModel {
 public:
  explicit FluidModel(Engine& engine) : engine_(&engine) {}

  FluidModel(const FluidModel&) = delete;
  FluidModel& operator=(const FluidModel&) = delete;

  /// Registers a resource with the given capacity (units/s). Capacity zero is
  /// legal (activities through it stall).
  ResourceId add_resource(std::string name, double capacity);

  /// Adjusts capacity at runtime (e.g. throttled node); triggers rebalance.
  void set_capacity(ResourceId resource, double capacity);

  double capacity(ResourceId resource) const;
  const std::string& resource_name(ResourceId resource) const;
  std::size_t resource_count() const { return resources_.size(); }

  /// Total consumption currently placed on a resource (<= capacity + eps).
  double consumption(ResourceId resource) const;

  /// Starts an activity; `on_complete` fires from the engine loop when the
  /// work is exhausted. Work <= 0 completes at the current time (the callback
  /// still fires asynchronously, never inside start()).
  ActivityId start(ActivitySpec spec, std::function<void()> on_complete);

  /// Aborts an activity; its completion callback will not fire.
  /// Returns false if the activity already completed or was cancelled.
  bool cancel(ActivityId activity);

  /// True if the activity is still running.
  bool is_active(ActivityId activity) const;

  /// Remaining work of a running activity (settled to the current instant);
  /// 0 for completed/cancelled/unknown ids.
  double remaining_work(ActivityId activity) const;

  /// Current fair-share rate of a running activity; 0 for completed/
  /// cancelled/unknown ids.
  double rate(ActivityId activity) const;

  std::size_t active_count() const { return order_.size(); }

  /// Number of rate recomputations performed (for performance benches).
  std::uint64_t rebalance_count() const { return rebalance_count_; }

  /// Cumulative activities examined across all rebalances — the work metric
  /// behind the "make the solve incremental" optimization: divide by
  /// rebalance_count() for the mean activities touched per solve.
  std::uint64_t activities_touched() const { return activities_touched_; }

  /// Total activities ever started (allocation tally for the profiler).
  std::uint64_t activities_started() const { return next_activity_id_ - 1; }

  /// Validates internal consistency: every activity's remaining work within
  /// [0, total work] (progress in [0, 1]), rates non-negative, finite, and
  /// within their caps, and per-resource consumption within capacity.
  /// Returns a description of the first broken invariant, or nullopt when
  /// all hold (core::InvariantChecker under --validate).
  std::optional<std::string> check_invariants() const;

 private:
  struct Resource {
    std::string name;
    double capacity = 0.0;
    double consumption = 0.0;  // refreshed by rebalance()
  };

  struct Activity {
    ActivitySpec spec;
    double remaining = 0.0;
    double rate = 0.0;
    std::function<void()> on_complete;
    EventId completion_event = kInvalidEventId;
  };

  /// Accrues progress since the last settle instant.
  void settle();
  /// Recomputes all rates (progressive filling) and reschedules completions.
  void rebalance();
  void schedule_completion(ActivityId id, Activity& activity);
  void on_activity_complete(ActivityId id);

  Engine* engine_;
  std::vector<Resource> resources_;
  std::unordered_map<ActivityId, Activity> activities_;
  std::vector<ActivityId> order_;  // insertion order for deterministic filling
  ActivityId next_activity_id_ = 1;
  SimTime last_settle_ = 0.0;
  std::uint64_t rebalance_count_ = 0;
  std::uint64_t activities_touched_ = 0;
  /// Telemetry sink for rebalance wall times (null while disabled).
  telemetry::Histogram* rebalance_hist_ = nullptr;
  /// Scratch buffers for rebalance(). The solve runs on every share change,
  /// so its working vectors live here and are reused across calls instead of
  /// being reallocated per solve; rebalance() never recurses, which makes the
  /// reuse safe.
  std::vector<double> scratch_avail_;
  std::vector<double> scratch_weight_sum_;
  std::vector<ActivityId> scratch_unfrozen_;
  std::vector<ActivityId> scratch_next_unfrozen_;
};

}  // namespace elastisim::sim
