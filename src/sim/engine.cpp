#include "sim/engine.h"

#include <cassert>

#include "stats/profiler.h"
#include "stats/telemetry.h"

namespace elastisim::sim {

Engine::Engine() : fluid_(std::make_unique<FluidModel>(*this)) {}

EventId Engine::schedule_at(SimTime when, EventQueue::Callback callback) {
  if (when < now_) when = now_;
  return queue_.push(when, std::move(callback));
}

EventId Engine::schedule_in(SimTime delay, EventQueue::Callback callback) {
  assert(delay >= 0.0 && "negative delay");
  return schedule_at(now_ + delay, std::move(callback));
}

bool Engine::step() {
  if (queue_.empty()) return false;
  if (telemetry::enabled()) return step_timed();
  auto [time, callback] = queue_.pop();
  assert(time + kTimeEpsilon >= now_ && "event queue returned an event in the past");
  if (time > now_) now_ = time;
  ++events_processed_;
  if (event_hook_ != nullptr) event_hook_(event_hook_ctx_, now_, events_processed_);
  callback();
  if (validator_) validator_(now_);
  return true;
}

bool Engine::step_timed() {
  if (!pop_hist_) {
    auto& registry = telemetry::Registry::global();
    pop_hist_ = &registry.histogram("engine.pop_seconds");
    dispatch_hist_ = &registry.histogram("engine.dispatch_seconds");
  }
  const double wall_pop = telemetry::wall_now();
  if (batch_start_wall_ < 0.0) batch_start_wall_ = wall_pop;
  auto [time, callback] = queue_.pop();
  const double wall_dispatch = telemetry::wall_now();
  assert(time + kTimeEpsilon >= now_ && "event queue returned an event in the past");
  if (time > now_) now_ = time;
  ++events_processed_;
  if (event_hook_ != nullptr) event_hook_(event_hook_ctx_, now_, events_processed_);
  callback();
  if (validator_) validator_(now_);
  const double wall_done = telemetry::wall_now();
  pop_hist_->record(wall_dispatch - wall_pop);
  dispatch_hist_->record(wall_done - wall_dispatch);
  if (++batch_events_ >= kDispatchBatch || queue_.empty()) {
    flush_dispatch_batch(wall_done);
  }
  return true;
}

void Engine::flush_dispatch_batch(double wall_end) {
  telemetry::Registry::global().spans().add("engine.dispatch", batch_start_wall_,
                                            wall_end - batch_start_wall_, batch_events_);
  batch_start_wall_ = -1.0;
  batch_events_ = 0;
}

// elsim-hot: the per-event dispatch loop; everything here runs once per event.
SimTime Engine::run() {
  // One dispatch scope for the whole drain, not one per event: nested phases
  // (fluid solves, scheduler, sinks, faults) attribute identically, per-event
  // counts live in events_processed(), and the profiler costs nothing in the
  // per-event hot path. The engine.dispatch exclusive time is the event loop
  // minus its instrumented children.
  ELSIM_PROFILE_SCOPE(stats::profiler::Phase::kEngineDispatch);
  if (cancel_ == nullptr) {
    while (step()) {
    }
    return now_;
  }
  // Cancellation-aware drain: the token is consulted between events (a run
  // never stops inside a callback) and fed the progress counters a stall
  // watchdog samples.
  while (!cancel_->cancelled() && step()) {
    cancel_->note_progress(events_processed_, now_);
  }
  return now_;
}

// elsim-hot: bounded variant of the dispatch loop.
SimTime Engine::run_until(SimTime deadline) {
  ELSIM_PROFILE_SCOPE(stats::profiler::Phase::kEngineDispatch);
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    if (cancel_ != nullptr && cancel_->cancelled()) return now_;
    step();
    if (cancel_ != nullptr) cancel_->note_progress(events_processed_, now_);
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace elastisim::sim
