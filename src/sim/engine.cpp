#include "sim/engine.h"

#include <cassert>

namespace elastisim::sim {

Engine::Engine() : fluid_(std::make_unique<FluidModel>(*this)) {}

EventId Engine::schedule_at(SimTime when, EventQueue::Callback callback) {
  if (when < now_) when = now_;
  return queue_.push(when, std::move(callback));
}

EventId Engine::schedule_in(SimTime delay, EventQueue::Callback callback) {
  assert(delay >= 0.0 && "negative delay");
  return schedule_at(now_ + delay, std::move(callback));
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto [time, callback] = queue_.pop();
  assert(time + kTimeEpsilon >= now_ && "event queue returned an event in the past");
  if (time > now_) now_ = time;
  ++events_processed_;
  callback();
  return true;
}

SimTime Engine::run() {
  while (step()) {
  }
  return now_;
}

SimTime Engine::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace elastisim::sim
