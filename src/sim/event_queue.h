// Time-ordered event queue with stable FIFO tie-breaking and O(log n)
// cancellation via lazy deletion.
//
// Events scheduled for the same instant fire in scheduling order, which makes
// simulations deterministic regardless of heap internals. Cancelled events
// stay in the heap but are skipped on pop; the callback is released at cancel
// time so captured resources are freed promptly.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace elastisim::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Enqueues a callback at absolute time `when`. Returns a handle usable
  /// with cancel(). `when` may equal the current simulation time.
  EventId push(SimTime when, Callback callback);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op. Returns true if the event was
  /// still pending.
  bool cancel(EventId id);

  /// True if no live events remain.
  bool empty() const { return live_count_ == 0; }

  /// Number of live (non-cancelled, non-fired) events.
  std::size_t size() const { return live_count_; }

  // Lifetime tallies for the profiler and the perf-trajectory benches; kept
  // always-on (one increment / compare per operation, negligible next to the
  // heap work they count).

  /// Total events ever enqueued.
  std::uint64_t pushes() const { return next_id_ - 1; }

  /// Total live events ever popped (cancellations excluded).
  std::uint64_t pops() const { return pops_; }

  /// High-water mark of the live event count.
  std::size_t peak_size() const { return peak_size_; }

  /// Time of the earliest live event; kTimeInfinity when empty.
  SimTime next_time();

  /// Removes and returns the earliest live event's callback, along with its
  /// time. Requires !empty().
  std::pair<SimTime, Callback> pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    bool operator>(const Entry& other) const {
      // elsim-lint: allow(float-equality) -- heap ordering wants exact times
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
  std::size_t peak_size_ = 0;
  std::uint64_t pops_ = 0;
};

}  // namespace elastisim::sim
