// Discrete-event simulation engine: clock, event loop, and fluid model.
//
// Single-threaded and deterministic: events at equal times fire in the order
// they were scheduled. The engine owns the FluidModel; activity completions
// are ordinary events, so user callbacks observe a consistent clock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/cancellation.h"
#include "sim/event_queue.h"
#include "sim/fluid.h"
#include "sim/time.h"

namespace elastisim::telemetry {
class Histogram;
}  // namespace elastisim::telemetry

namespace elastisim::sim {

class Engine {
 public:
  Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedules a callback at absolute time `when` (>= now, clamped to now
  /// otherwise: an event can never fire in the past).
  EventId schedule_at(SimTime when, EventQueue::Callback callback);

  /// Schedules a callback `delay` seconds from now (delay >= 0).
  EventId schedule_in(SimTime delay, EventQueue::Callback callback);

  /// Cancels a pending event; no-op if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until no events remain. Returns the final simulated time.
  SimTime run();

  /// Runs until the clock would pass `deadline`; events at exactly
  /// `deadline` are processed. Returns the final simulated time.
  SimTime run_until(SimTime deadline);

  /// Attaches a cooperative cancellation token (not owned; must outlive the
  /// run). run()/run_until() check it between events and return early once
  /// it is cancelled, leaving the pending queue intact; the engine publishes
  /// (events processed, simulated time) through it after every event so an
  /// external watchdog can detect stalls. Pass nullptr to detach; absent,
  /// the event loop carries no extra cost.
  void set_cancellation(CancellationToken* token) { cancel_ = token; }

  /// True once an attached token asked the run to stop.
  bool cancel_requested() const { return cancel_ != nullptr && cancel_->cancelled(); }

  /// Processes exactly one event. Returns false if none remain.
  bool step();

  /// Number of events processed so far (for performance benches).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Number of live pending events.
  std::size_t pending_events() const { return queue_.size(); }

  /// Read access to the queue's lifetime tallies (pushes/pops/peak size) for
  /// the profiler and the perf-trajectory benches.
  const EventQueue& queue() const { return queue_; }

  /// Installs a validation hook called after every dispatched event with the
  /// current simulated time (core::InvariantChecker under --validate). Pass
  /// an empty function to remove; costs one branch per event when absent.
  void set_event_validator(std::function<void(SimTime)> validator) {
    validator_ = std::move(validator);
  }

  /// Per-event observer signature: (context, event time, events processed so
  /// far, this event included).
  using EventHook = void (*)(void* ctx, SimTime now, std::uint64_t events);

  /// Installs an observer called on every event *before* its callback runs,
  /// so a crash inside the callback still leaves the dying event on record
  /// (the core::FlightRecorder rides this). Raw function pointer + context —
  /// unlike the validator there is deliberately no std::function here; the
  /// hook fires once per event and must stay a predictable branch. Pass
  /// nullptr to remove.
  void set_event_hook(EventHook hook, void* ctx) {
    event_hook_ = hook;
    event_hook_ctx_ = ctx;
  }

  FluidModel& fluid() { return *fluid_; }
  const FluidModel& fluid() const { return *fluid_; }

 private:
  /// step() with per-phase wall-clock timing; taken when telemetry is on.
  bool step_timed();
  void flush_dispatch_batch(double wall_end);

  SimTime now_ = 0.0;
  EventQueue queue_;
  std::unique_ptr<FluidModel> fluid_;
  std::uint64_t events_processed_ = 0;
  std::function<void(SimTime)> validator_;
  CancellationToken* cancel_ = nullptr;
  EventHook event_hook_ = nullptr;
  void* event_hook_ctx_ = nullptr;

  // Telemetry handles (cached on first timed step; null while disabled).
  // Dispatch work is additionally grouped into spans of up to kDispatchBatch
  // events so the Chrome trace's wall-clock track stays a few thousand
  // slices instead of one per event.
  static constexpr std::uint32_t kDispatchBatch = 8192;
  telemetry::Histogram* pop_hist_ = nullptr;
  telemetry::Histogram* dispatch_hist_ = nullptr;
  double batch_start_wall_ = -1.0;
  std::uint32_t batch_events_ = 0;
};

}  // namespace elastisim::sim
