#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace elastisim::sim {

// elsim-hot: every scheduled event passes through here.
EventId EventQueue::push(SimTime when, Callback callback) {
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(callback));
  if (++live_count_ > peak_size_) peak_size_ = live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && !callbacks_.count(heap_.top().id)) heap_.pop();
}

SimTime EventQueue::next_time() {
  drop_cancelled();
  if (heap_.empty()) return kTimeInfinity;
  return heap_.top().time;
}

// elsim-hot: every dispatched event passes through here.
std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty() && "pop() on empty event queue");
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(entry.id);
  Callback callback = std::move(it->second);
  callbacks_.erase(it);
  --live_count_;
  ++pops_;
  return {entry.time, std::move(callback)};
}

}  // namespace elastisim::sim
