#include "sim/cancellation.h"

namespace elastisim::sim {

std::string to_string(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kTimeout:
      return "timeout";
    case CancelReason::kStalled:
      return "stalled";
    case CancelReason::kInterrupted:
      return "interrupted";
  }
  return "unknown";
}

}  // namespace elastisim::sim
