#pragma once

namespace elastisim::util {
class Flags;
}

namespace elastisim::cli {

/// `elastisim postmortem <postmortem.json>`: renders a flight-recorder crash
/// dump as a human-readable report — cause, build/context provenance, the
/// phase stack at death, the queue/cluster snapshot, a timeline of notable
/// records, and the last 20 events before death. Exits non-zero on missing,
/// malformed, or wrong-schema input.
int run_postmortem(const util::Flags& flags);

}  // namespace elastisim::cli
