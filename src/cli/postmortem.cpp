#include "cli/postmortem.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "json/json.h"
#include "util/flags.h"

namespace elastisim::cli {

namespace {

/// One line of detail for a ring record, keyed by its "kind". Unknown kinds
/// degrade to an empty detail string instead of failing the render.
std::string record_detail(const json::Value& entry) {
  const std::string kind = entry.member_or("kind", "");
  char buffer[160];
  if (kind == "engine-event") {
    std::snprintf(buffer, sizeof(buffer), "event #%lld",
                  static_cast<long long>(entry.member_or("events", std::int64_t{0})));
  } else if (kind == "phase-enter" || kind == "phase-exit") {
    std::snprintf(buffer, sizeof(buffer), "%s", entry.member_or("phase", "?").c_str());
  } else if (kind == "scheduler-invoke") {
    std::snprintf(buffer, sizeof(buffer), "cause=%s queued=%lld rounds=%lld started=%lld",
                  entry.member_or("cause", "?").c_str(),
                  static_cast<long long>(entry.member_or("queued", std::int64_t{0})),
                  static_cast<long long>(entry.member_or("rounds", std::int64_t{0})),
                  static_cast<long long>(entry.member_or("started", std::int64_t{0})));
  } else if (kind == "job-state") {
    std::snprintf(buffer, sizeof(buffer), "job %lld -> %s (%lld nodes)",
                  static_cast<long long>(entry.member_or("job", std::int64_t{0})),
                  entry.member_or("state", "?").c_str(),
                  static_cast<long long>(entry.member_or("nodes", std::int64_t{0})));
  } else if (kind == "fault") {
    std::snprintf(buffer, sizeof(buffer), "%s node %lld",
                  entry.member_or("event", "?").c_str(),
                  static_cast<long long>(entry.member_or("node", std::int64_t{0})));
  } else if (kind == "cancel") {
    std::snprintf(buffer, sizeof(buffer), "reason=%s after %lld events",
                  entry.member_or("reason", "?").c_str(),
                  static_cast<long long>(entry.member_or("events", std::int64_t{0})));
  } else if (kind == "mark") {
    std::snprintf(buffer, sizeof(buffer), "%s value=%lld",
                  entry.member_or("mark", "?").c_str(),
                  static_cast<long long>(entry.member_or("value", std::int64_t{0})));
  } else {
    buffer[0] = '\0';
  }
  return buffer;
}

void print_record_row(const json::Value& entry) {
  std::printf("  %8lld %10.4f %12.3f %-17s %s\n",
              static_cast<long long>(entry.member_or("seq", std::int64_t{0})),
              entry.member_or("wall_s", 0.0), entry.member_or("sim_time", 0.0),
              entry.member_or("kind", "?").c_str(), record_detail(entry).c_str());
}

}  // namespace

int run_postmortem(const util::Flags& flags) {
  const auto& positional = flags.positional();
  if (positional.size() != 2) {  // "postmortem" <file>
    std::fprintf(stderr, "usage: %s postmortem <postmortem.json>\n",
                 flags.program().c_str());
    return 2;
  }
  const std::string& path = positional[1];

  json::Value root;
  try {
    root = json::parse_file(path);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", path.c_str(), error.what());
    return 1;
  }
  const std::string schema = root.member_or("schema", "");
  if (schema != "elastisim-postmortem-v1") {
    std::fprintf(stderr,
                 "error: %s: unexpected schema \"%s\" (want elastisim-postmortem-v1)\n",
                 path.c_str(), schema.c_str());
    return 1;
  }
  const json::Value* ring = root.find("ring");
  if (ring == nullptr || !ring->is_object()) {
    std::fprintf(stderr, "error: %s: missing \"ring\" object\n", path.c_str());
    return 1;
  }
  const json::Value* records = ring->find("records");
  if (records == nullptr || !records->is_array()) {
    std::fprintf(stderr, "error: %s: missing \"ring.records\" array\n", path.c_str());
    return 1;
  }

  std::printf("postmortem: %s\n", path.c_str());
  std::printf("cause: %s\n", root.member_or("cause", "?").c_str());
  const std::string detail = root.member_or("detail", "");
  if (!detail.empty()) std::printf("detail: %s\n", detail.c_str());
  const std::string cancel_reason = root.member_or("cancel_reason", "");
  if (!cancel_reason.empty()) std::printf("cancel reason: %s\n", cancel_reason.c_str());
  if (const json::Value* build = root.find("build"); build != nullptr) {
    std::printf("build: %s, %s\n", build->member_or("compiler", "?").c_str(),
                build->member_or("build_type", "?").c_str());
  }
  if (const json::Value* context = root.find("context");
      context != nullptr && context->is_object() && !context->as_object().empty()) {
    std::printf("context:");
    for (const auto& [key, value] : context->as_object()) {
      std::printf(" %s=%s", key.c_str(), value.get_or(std::string("?")).c_str());
    }
    std::printf("\n");
  }
  std::printf("sim time at death: %.3f s, peak rss %.1f MiB\n",
              root.member_or("sim_time", 0.0),
              root.member_or("peak_rss_bytes", 0.0) / (1024.0 * 1024.0));

  // The dying phase: innermost frame of the live stack if the dump ran while
  // phases were still open (signal path); otherwise stack unwinding popped
  // them and "last_phase" — the last phase ever entered — names it instead.
  if (const json::Value* stack = root.find("phase_stack");
      stack != nullptr && stack->is_array() && !stack->as_array().empty()) {
    std::string rendered;
    for (const json::Value& frame : stack->as_array()) {
      if (!rendered.empty()) rendered += " > ";
      rendered += frame.get_or(std::string("?"));
    }
    std::printf("phase stack at death: %s (dying in \"%s\")\n", rendered.c_str(),
                stack->as_array().back().get_or(std::string("?")).c_str());
  } else if (const std::string last_phase = root.member_or("last_phase", "");
             !last_phase.empty()) {
    std::printf("phase stack at death: (unwound) — dying in \"%s\"\n", last_phase.c_str());
  } else {
    std::printf("phase stack at death: (empty)\n");
  }

  if (const json::Value* snapshot = root.find("snapshot");
      snapshot != nullptr && snapshot->is_object()) {
    std::printf(
        "last scheduler snapshot: t=%.3f, %lld events (%lld pending), "
        "%lld queued / %lld running jobs, nodes %lld free / %lld failed / "
        "%lld drained of %lld\n",
        snapshot->member_or("sim_time", 0.0),
        static_cast<long long>(snapshot->member_or("events", std::int64_t{0})),
        static_cast<long long>(snapshot->member_or("pending_events", std::int64_t{0})),
        static_cast<long long>(snapshot->member_or("jobs_queued", std::int64_t{0})),
        static_cast<long long>(snapshot->member_or("jobs_running", std::int64_t{0})),
        static_cast<long long>(snapshot->member_or("nodes_free", std::int64_t{0})),
        static_cast<long long>(snapshot->member_or("nodes_failed", std::int64_t{0})),
        static_cast<long long>(snapshot->member_or("nodes_drained", std::int64_t{0})),
        static_cast<long long>(snapshot->member_or("nodes_total", std::int64_t{0})));
  }

  const json::Array& entries = records->as_array();
  std::printf("ring: %lld records captured, %lld dropped, %zu decoded\n",
              static_cast<long long>(ring->member_or("recorded", std::int64_t{0})),
              static_cast<long long>(ring->member_or("dropped", std::int64_t{0})),
              entries.size());

  // Timeline of notable records (everything except the per-event heartbeat,
  // which would drown the signal; the raw events reappear in the tail table).
  std::vector<const json::Value*> notable;
  for (const json::Value& entry : entries) {
    if (entry.member_or("kind", "") != "engine-event") notable.push_back(&entry);
  }
  if (!notable.empty()) {
    std::printf("\ntimeline (%zu notable records):\n", notable.size());
    std::printf("  %8s %10s %12s %-17s %s\n", "seq", "wall(s)", "sim_time", "kind",
                "detail");
    for (const json::Value* entry : notable) print_record_row(*entry);
  }

  constexpr std::size_t kTail = 20;
  const std::size_t shown = std::min(kTail, entries.size());
  std::printf("\nlast %zu events before death:\n", shown);
  std::printf("  %8s %10s %12s %-17s %s\n", "seq", "wall(s)", "sim_time", "kind",
              "detail");
  for (std::size_t i = entries.size() - shown; i < entries.size(); ++i) {
    print_record_row(entries[i]);
  }
  return 0;
}

}  // namespace elastisim::cli
