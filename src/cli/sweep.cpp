#include "cli/sweep.h"

#include <atomic>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep_runner.h"
#include "json/json.h"
#include "stats/profiler.h"
#include "util/flags.h"
#include "util/load_error.h"

namespace elastisim::cli {

namespace {

/// Set by the SIGINT/SIGTERM handler; the sweep watchdog polls it and turns
/// it into cooperative cancellation of every in-flight cell.
std::atomic<bool> g_sweep_interrupt{false};

void handle_sweep_signal(int) { g_sweep_interrupt.store(true); }

void usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s sweep <sweep.json> [--threads <n>] [--out-dir <dir>]\n"
               "          [--cell-outputs true|false] [--progress]\n"
               "          [--inject-crash <i,j,...>] [--inject-stall <i,j,...>]\n",
               program);
}

/// Parses "3,17,24" into cell indices; returns false on garbage.
bool parse_index_list(const std::string& text, std::set<std::size_t>& out) {
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    const std::string token = text.substr(begin, end - begin);
    if (!token.empty()) {
      std::size_t value = 0;
      const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec != std::errc{} || ptr != token.data() + token.size()) return false;
      out.insert(value);
    }
    begin = end + 1;
  }
  return true;
}

void print_summary(const core::SweepSpec& spec, const core::SweepResult& result) {
  std::printf("\n%-5s %-22s %-9s %6s %9s  %s\n", "cell", "scheduler/seed", "status",
              "tries", "time", "detail");
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const core::SweepCell& cell = result.cells[i];
    const core::CellOutcome& outcome = result.outcomes[i];
    std::string label = cell.scheduler + "/" + std::to_string(cell.seed);
    std::string detail;
    if (!outcome.error.empty()) {
      detail = outcome.error;
    } else if (outcome.has_metrics) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "makespan %.0fs", outcome.metrics.makespan);
      detail = buffer;
    }
    std::printf("%-5zu %-22s %-9s %6d %8.2fs  %s\n", cell.index, label.c_str(),
                core::to_string(outcome.status).c_str(), outcome.attempts,
                outcome.duration_s, detail.c_str());
  }

  std::printf("\n%-20s %6s %6s %14s %12s %10s %6s\n", "scheduler", "cells", "ok",
              "mean makespan", "mean wait", "slowdown", "util");
  for (const std::string& scheduler : spec.schedulers) {
    std::size_t total = 0;
    std::size_t succeeded = 0;
    double makespan = 0.0;
    double wait = 0.0;
    double slowdown = 0.0;
    double utilization = 0.0;
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
      // elsim-lint: allow(float-equality) -- std::string comparison
      if (result.cells[i].scheduler != scheduler) continue;
      ++total;
      const core::CellOutcome& outcome = result.outcomes[i];
      if (!outcome.succeeded() || !outcome.has_metrics) continue;
      ++succeeded;
      makespan += outcome.metrics.makespan;
      wait += outcome.metrics.mean_wait;
      slowdown += outcome.metrics.mean_bounded_slowdown;
      utilization += outcome.metrics.avg_utilization;
    }
    const double denom = succeeded > 0 ? static_cast<double>(succeeded) : 1.0;
    std::printf("%-20s %6zu %6zu %13.0fs %11.1fs %10.2f %5.0f%%\n", scheduler.c_str(),
                total, succeeded, makespan / denom, wait / denom, slowdown / denom,
                100.0 * utilization / denom);
  }

  std::printf("\n%zu/%zu cells succeeded (ok %zu, retried %zu, timeout %zu, stalled %zu, "
              "crashed %zu, skipped %zu)%s\n",
              result.succeeded(), result.cells.size(), result.count(core::CellStatus::kOk),
              result.count(core::CellStatus::kRetried),
              result.count(core::CellStatus::kTimeout),
              result.count(core::CellStatus::kStalled),
              result.count(core::CellStatus::kCrashed),
              result.count(core::CellStatus::kSkipped),
              result.interrupted ? " — interrupted, partial results" : "");
}

}  // namespace

int run_sweep(const util::Flags& flags) {
  const char* program = flags.program().empty() ? "elastisim" : flags.program().c_str();
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "error: sweep requires a spec file\n");
    usage(program);
    return 2;
  }
  const std::string spec_path = flags.positional()[1];
  const std::string out_dir = flags.get("out-dir", std::string("sweep-results"));
  const bool cell_outputs = flags.get("cell-outputs", true);
  const bool progress = flags.get("progress", false);
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t threads = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get("threads", static_cast<std::int64_t>(hardware))));

  std::set<std::size_t> crash_cells;
  std::set<std::size_t> stall_cells;
  if (!parse_index_list(flags.get("inject-crash", std::string()), crash_cells) ||
      !parse_index_list(flags.get("inject-stall", std::string()), stall_cells)) {
    std::fprintf(stderr, "error: --inject-crash/--inject-stall take comma-separated "
                         "cell indices\n");
    usage(program);
    return 2;
  }

  const auto unknown = flags.unknown_with_suggestions();
  if (!unknown.empty()) {
    for (const auto& [name, suggestion] : unknown) {
      const std::string hint =
          suggestion.empty() ? std::string() : " (did you mean --" + suggestion + "?)";
      std::fprintf(stderr, "error: unknown flag --%s%s\n", name.c_str(), hint.c_str());
    }
    usage(program);
    return 2;
  }

  core::SweepSpec spec;
  try {
    spec = core::load_sweep_spec(spec_path);
  } catch (const util::LoadError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }

  core::SweepOptions options;
  options.threads = threads;
  if (cell_outputs) options.cell_output_dir = out_dir;
  options.interrupt = &g_sweep_interrupt;
  options.progress = progress;

  core::SweepRunner runner(std::move(spec), std::move(options));
  try {
    // Parse every input up front: a malformed platform/workload fails the
    // sweep cleanly before any output directory exists.
    runner.load_inputs();
  } catch (const util::LoadError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }

  if (!crash_cells.empty() || !stall_cells.empty()) {
    runner.set_cell_body([&runner, crash_cells, stall_cells](
                             const core::SweepCell& cell, sim::CancellationToken& token) {
      if (crash_cells.count(cell.index) != 0) {
        // Die inside a profiled phase so the flight recorder's postmortem
        // names the dying phase, like a real scheduler crash would.
        ELSIM_PROFILE_SCOPE(stats::profiler::Phase::kScheduler);
        throw std::runtime_error("injected crash in cell " + std::to_string(cell.index));
      }
      if (stall_cells.count(cell.index) != 0) {
        // Burn wall-clock without event progress until the stall watchdog
        // (or a timeout/interrupt) cancels the token.
        ELSIM_PROFILE_SCOPE(stats::profiler::Phase::kScheduler);
        while (!token.cancelled()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return core::SimulationResult{};
      }
      return runner.run_cell(cell, token);
    });
  }

  std::printf("sweep: %zu cells (%zu platforms x %zu workloads x %zu schedulers x %zu "
              "seeds) on %zu threads\n",
              runner.cells().size(), runner.spec().platforms.size(),
              runner.spec().workloads.size(), runner.spec().schedulers.size(),
              runner.spec().seeds.size(), threads);

  g_sweep_interrupt.store(false);
  std::signal(SIGINT, handle_sweep_signal);
  std::signal(SIGTERM, handle_sweep_signal);
  core::SweepResult result = runner.run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  print_summary(runner.spec(), result);

  std::filesystem::create_directories(out_dir);
  const std::string sweep_json = out_dir + "/sweep.json";
  json::write_file(sweep_json,
                   core::sweep_result_to_json(runner.spec(), result, threads,
                                              cell_outputs ? out_dir : std::string()));
  const std::string extra = cell_outputs ? " and " + out_dir + "/cells/*/" : std::string();
  std::printf("wrote %s%s\n", sweep_json.c_str(), extra.c_str());

  return core::sweep_exit_code(result);
}

}  // namespace elastisim::cli
