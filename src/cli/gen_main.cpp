// elastisim-gen — synthesize workload files from the generator's knobs.
//
//   elastisim-gen --jobs 200 --seed 42 --malleable 0.5 --out workload.json
//
// Every GeneratorConfig knob is exposed as a flag; the result is a JSON
// workload usable with `elastisim --workload`, or an SWF trace with
// `--format swf`. Quantities accept unit suffixes ("64MiB", "2GF", "90s").
#include <cstdio>
#include <fstream>

#include "util/flags.h"
#include "util/units.h"
#include "workload/generator.h"
#include "workload/swf.h"
#include "workload/workload_io.h"

using namespace elastisim;

namespace {

double quantity_flag(const util::Flags& flags, const std::string& name, double fallback,
                     std::optional<double> (*parser)(std::string_view)) {
  const std::string raw = flags.get(name, std::string());
  if (raw.empty()) return fallback;
  if (auto parsed = parser(raw)) return *parsed;
  std::fprintf(stderr, "warning: cannot parse --%s=%s, using default\n", name.c_str(),
               raw.c_str());
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  workload::GeneratorConfig config;
  config.job_count = static_cast<std::size_t>(
      flags.get("jobs", static_cast<std::int64_t>(config.job_count)));
  config.seed =
      static_cast<std::uint64_t>(flags.get("seed", static_cast<std::int64_t>(config.seed)));
  config.mean_interarrival = quantity_flag(flags, "interarrival", config.mean_interarrival,
                                           util::parse_duration);
  config.min_nodes =
      static_cast<int>(flags.get("min-nodes", static_cast<std::int64_t>(config.min_nodes)));
  config.max_nodes =
      static_cast<int>(flags.get("max-nodes", static_cast<std::int64_t>(config.max_nodes)));
  config.moldable_fraction = flags.get("moldable", config.moldable_fraction);
  config.malleable_fraction = flags.get("malleable", config.malleable_fraction);
  config.evolving_fraction = flags.get("evolving", config.evolving_fraction);
  config.min_iterations = static_cast<int>(
      flags.get("min-iterations", static_cast<std::int64_t>(config.min_iterations)));
  config.max_iterations = static_cast<int>(
      flags.get("max-iterations", static_cast<std::int64_t>(config.max_iterations)));
  config.mean_iteration_compute = quantity_flag(
      flags, "iteration-compute", config.mean_iteration_compute, util::parse_duration);
  config.flops_per_node =
      quantity_flag(flags, "flops-per-node", config.flops_per_node, util::parse_flops);
  config.max_alpha = flags.get("max-alpha", config.max_alpha);
  config.comm_bytes = quantity_flag(flags, "comm-bytes", config.comm_bytes, util::parse_bytes);
  config.io_fraction = flags.get("io-fraction", config.io_fraction);
  config.io_bytes = quantity_flag(flags, "io-bytes", config.io_bytes, util::parse_bytes);
  config.checkpoint_fraction = flags.get("checkpoint-fraction", config.checkpoint_fraction);
  config.checkpoint_bytes =
      quantity_flag(flags, "checkpoint-bytes", config.checkpoint_bytes, util::parse_bytes);
  config.checkpoint_every = static_cast<int>(
      flags.get("checkpoint-every", static_cast<std::int64_t>(config.checkpoint_every)));
  // --daly-mtbf M derives checkpoint_every from the Young/Daly optimal
  // interval instead: checkpoint cost C comes from --daly-checkpoint-cost
  // (seconds to write one checkpoint), iteration length from
  // --iteration-compute.
  const double daly_mtbf = quantity_flag(flags, "daly-mtbf", 0.0, util::parse_duration);
  if (daly_mtbf > 0.0) {
    const double cost =
        quantity_flag(flags, "daly-checkpoint-cost", 60.0, util::parse_duration);
    config.checkpoint_every =
        workload::daly_checkpoint_every(cost, daly_mtbf, config.mean_iteration_compute);
    std::printf("Young/Daly: checkpoint every %d iterations (interval %.0fs)\n",
                config.checkpoint_every,
                workload::young_daly_interval(cost, daly_mtbf));
  }
  config.state_bytes_per_node =
      quantity_flag(flags, "state-bytes", config.state_bytes_per_node, util::parse_bytes);
  config.walltime_factor = flags.get("walltime-factor", config.walltime_factor);
  config.evolving_phase_fraction =
      flags.get("evolving-phase-fraction", config.evolving_phase_fraction);
  config.max_priority = static_cast<int>(
      flags.get("max-priority", static_cast<std::int64_t>(config.max_priority)));
  config.chain_fraction = flags.get("chain-fraction", config.chain_fraction);

  const std::string out = flags.get("out", std::string("workload.json"));
  const std::string format = flags.get("format", std::string("json"));

  for (const std::string& unknown : flags.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n", unknown.c_str());
  }

  const auto jobs = workload::generate_workload(config);
  if (format == "json") {
    workload::save_workload(out, jobs);
  } else if (format == "swf") {
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
    workload::write_swf(file, jobs, config.flops_per_node, /*processors_per_node=*/1);
  } else {
    std::fprintf(stderr, "error: unknown --format %s (json|swf)\n", format.c_str());
    return 2;
  }
  std::printf("wrote %zu jobs to %s (%s)\n", jobs.size(), out.c_str(), format.c_str());
  return 0;
}
