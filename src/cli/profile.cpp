#include "cli/profile.h"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "json/json.h"
#include "util/flags.h"

namespace elastisim::cli {

namespace {

struct PhaseRow {
  std::string name;
  std::uint64_t calls = 0;
  double inclusive_s = 0.0;
  double exclusive_s = 0.0;
};

std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f %s", bytes, units[unit]);
  return buffer;
}

/// A 24-cell percent bar: '#' per full ~4.17%, '-' padding.
std::string percent_bar(double fraction) {
  constexpr int kWidth = 24;
  int filled = static_cast<int>(fraction * kWidth + 0.5);
  filled = std::clamp(filled, fraction > 0.0 ? 1 : 0, kWidth);
  return std::string(static_cast<std::size_t>(filled), '#') +
         std::string(static_cast<std::size_t>(kWidth - filled), '-');
}

}  // namespace

int run_profile(const util::Flags& flags) {
  const auto& positional = flags.positional();
  if (positional.size() != 2) {  // "profile" <file>
    std::fprintf(stderr, "usage: %s profile <profile.json> [--top <n>]\n",
                 flags.program().c_str());
    return 2;
  }
  const std::string& path = positional[1];
  // Parse --top from the raw string: Flags::get would silently fall back to
  // the default on junk like "--top banana" or "--top 0", which hides typos.
  std::size_t top = 16;
  if (flags.has("top")) {
    const std::string raw = flags.get("top", std::string());
    std::int64_t parsed = 0;
    const char* end = raw.data() + raw.size();
    const auto [ptr, ec] = std::from_chars(raw.data(), end, parsed);
    if (raw.empty() || ec != std::errc() || ptr != end || parsed <= 0) {
      std::fprintf(stderr, "error: --top expects a positive integer, got \"%s\"\n",
                   raw.c_str());
      std::fprintf(stderr, "usage: %s profile <profile.json> [--top <n>]\n",
                   flags.program().c_str());
      return 2;
    }
    top = static_cast<std::size_t>(parsed);
  }

  json::Value root;
  try {
    root = json::parse_file(path);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", path.c_str(), error.what());
    return 1;
  }
  const std::string schema = root.member_or("schema", "");
  if (schema != "elastisim-profile-v1") {
    std::fprintf(stderr, "error: %s: unexpected schema \"%s\" (want elastisim-profile-v1)\n",
                 path.c_str(), schema.c_str());
    return 1;
  }
  const json::Value* phases = root.find("phases");
  if (!phases || !phases->is_array()) {
    std::fprintf(stderr, "error: %s: missing \"phases\" array\n", path.c_str());
    return 1;
  }

  std::vector<PhaseRow> rows;
  for (const json::Value& entry : phases->as_array()) {
    PhaseRow row;
    row.name = entry.member_or("name", "?");
    row.calls = static_cast<std::uint64_t>(entry.member_or("calls", std::int64_t{0}));
    row.inclusive_s = entry.member_or("inclusive_s", 0.0);
    row.exclusive_s = entry.member_or("exclusive_s", 0.0);
    rows.push_back(std::move(row));
  }
  // Most expensive first; ties broken by name so the table is deterministic.
  std::stable_sort(rows.begin(), rows.end(), [](const PhaseRow& a, const PhaseRow& b) {
    // elsim-lint: allow(float-equality) -- exact-tie fallback to name ordering
    if (a.exclusive_s != b.exclusive_s) return a.exclusive_s > b.exclusive_s;
    return a.name < b.name;
  });

  const double wall_s = root.member_or("wall_s", 0.0);
  double covered_s = 0.0;
  for (const PhaseRow& row : rows) covered_s += row.exclusive_s;

  std::printf("profile: %s\n", path.c_str());
  if (const json::Value* build = root.find("build")) {
    std::printf("build: %s, %s%s\n", build->member_or("compiler", "?").c_str(),
                build->member_or("build_type", "?").c_str(),
                build->member_or("profiler_compiled", true) ? "" : " (profiler compiled out)");
    const std::string build_flags = build->member_or("flags", "");
    if (!build_flags.empty()) std::printf("flags: %s\n", build_flags.c_str());
  }
  std::printf("wall %.3f s, phases cover %.3f s (%.1f%%), peak rss %s\n\n", wall_s,
              covered_s, wall_s > 0.0 ? 100.0 * covered_s / wall_s : 0.0,
              human_bytes(root.member_or("peak_rss_bytes", 0.0)).c_str());

  std::printf("%-16s %12s %10s %10s %6s  %s\n", "phase", "calls", "incl(s)", "excl(s)",
              "excl%", "of wall");
  const std::size_t shown = std::min(top, rows.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const PhaseRow& row = rows[i];
    const double fraction = wall_s > 0.0 ? row.exclusive_s / wall_s : 0.0;
    std::printf("%-16s %12llu %10.4f %10.4f %5.1f%%  %s\n", row.name.c_str(),
                static_cast<unsigned long long>(row.calls), row.inclusive_s,
                row.exclusive_s, 100.0 * fraction, percent_bar(fraction).c_str());
  }
  if (rows.size() > shown) {
    std::printf("(%zu more phases; rerun with --top %zu)\n", rows.size() - shown,
                rows.size());
  }

  if (const json::Value* counters = root.find("counters");
      counters && counters->is_object() && !counters->as_object().empty()) {
    std::printf("\ncounters:\n");
    for (const auto& [name, value] : counters->as_object()) {
      std::printf("  %-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value.get_or(std::int64_t{0})));
    }
  }
  return 0;
}

}  // namespace elastisim::cli
