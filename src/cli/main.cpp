// elastisim — command-line front end.
//
//   elastisim --platform platform.json --workload workload.json \
//             [--scheduler easy-malleable] [--interval 0] [--no-reconfig-cost] \
//             [--out-dir results] [--log info]
//
//   elastisim --platform platform.json --swf trace.swf \
//             [--swf-cores-per-node 48] [--swf-malleable 0.0] ...
//
// Runs the workload on the platform under the chosen algorithm and writes
//   <out-dir>/jobs.csv        per-job records,
//   <out-dir>/timeline.csv    allocated-node step function,
//   <out-dir>/summary.json    headline metrics,
//   <out-dir>/telemetry.json  counters/gauges/histograms (with --telemetry),
// printing the summary to stdout as well. --chrome-trace <file> additionally
// writes a Chrome trace_event JSON viewable in Perfetto (see
// docs/OBSERVABILITY.md).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/simulation.h"
#include "json/json.h"
#include "stats/chrome_trace.h"
#include "stats/telemetry.h"
#include "stats/trace.h"
#include "platform/loader.h"
#include "util/flags.h"
#include "util/log.h"
#include "util/units.h"
#include "workload/swf.h"
#include "workload/workload_io.h"

using namespace elastisim;

namespace {

void usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s --platform <file.json> (--workload <file.json> | --swf <trace>)\n"
               "          [--scheduler <name>] [--interval <seconds>] [--no-reconfig-cost]\n"
               "          [--out-dir <dir>] [--trace] [--telemetry]\n"
               "          [--chrome-trace <file.json>] [--log <level>]\n\n"
               "schedulers:",
               program);
  for (const std::string& name : core::scheduler_names()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
}

json::Value summary_json(const core::SimulationResult& result,
                         const core::SimulationConfig& config) {
  json::Object out;
  out["scheduler"] = config.scheduler;
  out["submitted"] = result.submitted;
  out["finished"] = result.finished;
  out["killed"] = result.killed;
  out["stuck"] = result.stuck;
  out["makespan_s"] = result.makespan;
  out["mean_wait_s"] = result.recorder.mean_wait();
  out["median_wait_s"] = result.recorder.median_wait();
  out["max_wait_s"] = result.recorder.max_wait();
  out["mean_turnaround_s"] = result.recorder.mean_turnaround();
  out["mean_bounded_slowdown"] = result.recorder.mean_bounded_slowdown();
  out["avg_utilization"] = result.recorder.average_utilization();
  out["expansions"] = result.recorder.total_expansions();
  out["shrinks"] = result.recorder.total_shrinks();
  out["wall_seconds"] = result.wall_seconds;
  out["events_processed"] = result.events_processed;
  return json::Value(std::move(out));
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  util::set_log_level(util::parse_log_level(flags.get("log", std::string("warn"))));

  const std::string platform_path = flags.get("platform", std::string());
  const std::string workload_path = flags.get("workload", std::string());
  const std::string swf_path = flags.get("swf", std::string());
  if (platform_path.empty() || (workload_path.empty() && swf_path.empty())) {
    usage(argv[0]);
    return 2;
  }

  try {
    core::SimulationConfig config;
    config.platform = platform::load_cluster_config(platform_path);
    config.scheduler = flags.get("scheduler", std::string("easy-malleable"));
    config.batch.scheduling_interval = flags.get("interval", 0.0);
    config.batch.charge_reconfiguration = !flags.get("no-reconfig-cost", false);

    std::vector<workload::Job> jobs;
    if (!workload_path.empty()) {
      jobs = workload::load_workload(workload_path);
    } else {
      workload::SwfImportOptions options;
      options.flops_per_node =
          config.platform.cores_per_node * config.platform.flops_per_core;
      options.processors_per_node =
          static_cast<int>(flags.get("swf-cores-per-node", std::int64_t{1}));
      options.malleable_fraction = flags.get("swf-malleable", 0.0);
      options.max_nodes = static_cast<int>(config.platform.node_count);
      options.seed = static_cast<std::uint64_t>(flags.get("seed", std::int64_t{42}));
      jobs = workload::jobs_from_swf(workload::parse_swf_file(swf_path), options);
    }
    std::printf("loaded %zu jobs, %zu-node %s platform, scheduler %s\n", jobs.size(),
                config.platform.node_count,
                platform::to_string(config.platform.topology).c_str(),
                config.scheduler.c_str());

    const std::string out_dir = flags.get("out-dir", std::string("results"));
    const bool want_trace = flags.get("trace", false);
    const std::string chrome_path = flags.get("chrome-trace", std::string());
    // A bare "--chrome-trace" parses as the boolean value "true"; demand a
    // real path instead of silently writing a file named "true".
    if (flags.has("chrome-trace") && (chrome_path.empty() || chrome_path == "true")) {
      std::fprintf(stderr, "error: --chrome-trace requires a file path\n");
      usage(argv[0]);
      return 2;
    }
    const bool want_telemetry = flags.get("telemetry", false) || !chrome_path.empty();
    for (const std::string& unknown : flags.unused()) {
      ELSIM_WARN("unknown flag --{} ignored", unknown);
    }
    if (want_telemetry) telemetry::set_enabled(true);

    // Wire the pieces by hand (instead of run_simulation) so the optional
    // event trace and telemetry sinks can be attached.
    core::SimulationResult result;
    {
      sim::Engine engine;
      platform::Cluster cluster(engine, config.platform);
      core::BatchSystem batch(engine, cluster, core::make_scheduler(config.scheduler),
                              result.recorder, config.batch);
      stats::EventTrace trace;
      if (want_trace) batch.set_event_trace(&trace);
      telemetry::ChromeTraceBuilder chrome;
      if (!chrome_path.empty()) batch.set_chrome_trace(&chrome);
      result.submitted = batch.submit_all(std::move(jobs));
      const auto wall_begin = std::chrono::steady_clock::now();
      engine.run();
      result.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_begin)
              .count();
      result.finished = batch.finished_jobs();
      result.killed = batch.killed_jobs();
      result.stuck = batch.queued_jobs() + batch.running_jobs();
      result.makespan = result.recorder.makespan();
      result.events_processed = engine.events_processed();
      if (want_trace) {
        std::filesystem::create_directories(out_dir);
        std::ofstream trace_csv(out_dir + "/trace.csv");
        trace.write_csv(trace_csv);
      }
      if (want_telemetry) {
        auto& registry = telemetry::Registry::global();
        registry.counter("engine.events").add(result.events_processed);
        registry.gauge("engine.events_per_second")
            .set(result.makespan, result.wall_seconds > 0.0
                                      ? static_cast<double>(result.events_processed) /
                                            result.wall_seconds
                                      : 0.0);
      }
      if (!chrome_path.empty()) {
        chrome.close_open_slices(engine.now());
        for (const telemetry::Span& span : telemetry::Registry::global().spans().spans()) {
          chrome.wall_slice(span.name, span.wall_start_s, span.dur_s, span.items);
        }
        const std::filesystem::path parent =
            std::filesystem::path(chrome_path).parent_path();
        if (!parent.empty()) std::filesystem::create_directories(parent);
        chrome.write_file(chrome_path);
        std::printf("wrote Chrome trace (%zu events) to %s\n", chrome.event_count(),
                    chrome_path.c_str());
      }
    }

    std::filesystem::create_directories(out_dir);
    {
      std::ofstream jobs_csv(out_dir + "/jobs.csv");
      result.recorder.write_jobs_csv(jobs_csv);
      std::ofstream timeline_csv(out_dir + "/timeline.csv");
      result.recorder.write_timeline_csv(timeline_csv);
      json::write_file(out_dir + "/summary.json", summary_json(result, config));
      if (want_telemetry) {
        json::write_file(out_dir + "/telemetry.json",
                         telemetry::Registry::global().to_json());
      }
    }

    std::printf("\n%s\n", json::dump_pretty(summary_json(result, config)).c_str());
    std::printf("\nwrote %s/jobs.csv, %s/timeline.csv, %s/summary.json%s\n", out_dir.c_str(),
                out_dir.c_str(), out_dir.c_str(),
                want_telemetry ? ", telemetry.json" : "");
    if (result.stuck > 0) {
      std::fprintf(stderr, "warning: %zu jobs never completed (check job sizes vs platform)\n",
                   result.stuck);
      return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
