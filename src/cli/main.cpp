// elastisim — command-line front end.
//
//   elastisim --platform platform.json --workload workload.json \
//             [--scheduler easy-malleable] [--interval 0] [--no-reconfig-cost] \
//             [--out-dir results] [--log info]
//
//   elastisim --platform platform.json --swf trace.swf \
//             [--swf-cores-per-node 48] [--swf-malleable 0.0] ...
//
// Runs the workload on the platform under the chosen algorithm and writes
//   <out-dir>/jobs.csv        per-job records,
//   <out-dir>/timeline.csv    allocated-node step function,
//   <out-dir>/summary.json    headline metrics,
//   <out-dir>/telemetry.json  counters/gauges/histograms (with --telemetry),
// printing the summary to stdout as well. --timeseries additionally writes
// <out-dir>/timeseries.csv, a simulation-state timeline sampled at every
// scheduling point (plus a fixed cadence with --sample-interval, which
// implies --timeseries). --chrome-trace <file> writes a Chrome trace_event
// JSON viewable in Perfetto, and --journal <file> a JSONL decision journal
// explaining every scheduling verdict (see docs/OBSERVABILITY.md). The
// artifacts feed the offline subcommands
//
//   elastisim inspect --job <id> <journal>    why a job waited
//   elastisim inspect --diff <a> <b>          first divergent decision
//   elastisim report <out-dir>                self-contained report.html
//   elastisim profile <profile.json>          phase table for a --profile run
//
// --profile <file.json> (or ELSIM_PROFILE=<path>, ELSIM_PROFILE=1 for
// <out-dir>/profile.json) runs the self-profiler: hierarchical phase wall
// times plus work-metric counters, written as deterministic-schema JSON.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>

#include "cli/inspect.h"
#include "cli/postmortem.h"
#include "cli/profile.h"
#include "cli/report.h"
#include "cli/sweep.h"
#include "cli/sweep_report.h"
#include "core/fault_injector.h"
#include "core/flight_recorder.h"
#include "core/invariant_checker.h"
#include "core/simulation.h"
#include "json/json.h"
#include "stats/chrome_trace.h"
#include "stats/journal.h"
#include "stats/profiler.h"
#include "stats/state_sampler.h"
#include "stats/telemetry.h"
#include "stats/trace.h"
#include "platform/loader.h"
#include "sim/cancellation.h"
#include "util/flags.h"
#include "util/load_error.h"
#include "util/log.h"
#include "util/units.h"
#include "workload/swf.h"
#include "workload/workload_io.h"

using namespace elastisim;

namespace {

void usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s --platform <file.json> (--workload <file.json> | --swf <trace>)\n"
               "          [--scheduler <name>] [--interval <seconds>] [--no-reconfig-cost]\n"
               "          [--out-dir <dir>] [--trace] [--telemetry]\n"
               "          [--timeseries] [--sample-interval <seconds>]\n"
               "          [--chrome-trace <file.json>] [--journal <file.jsonl>]\n"
               "          [--profile <file.json>] [--validate] [--log <level>]\n"
               "   or: %s sweep <sweep.json> [--threads <n>] [--out-dir <dir>]\n"
               "   or: %s sweep-report <sweep-dir> [--out <report.html>]\n"
               "   or: %s inspect --job <id> <journal.jsonl>\n"
               "   or: %s inspect --diff <a.jsonl> <b.jsonl>\n"
               "   or: %s report <out-dir> [--out <report.html>]\n"
               "   or: %s profile <profile.json> [--top <n>]\n"
               "   or: %s postmortem <postmortem.json>\n"
               "failures: [--mtbf <duration>] [--failure-dist exponential|weibull]\n"
               "          [--weibull-shape <k>] [--repair <duration>]\n"
               "          [--repair-dist constant|lognormal] [--repair-sigma <s>]\n"
               "          [--pod-correlation <p>] [--failure-horizon <duration>]\n"
               "          [--failure-seed <n>] [--failure-trace <file.json>]\n"
               "          [--save-failure-trace <file.json>]\n"
               "          [--failure-policy kill|requeue|requeue-restart]\n"
               "          [--restart-overhead <duration>] [--max-requeues <n>]\n\n"
               "schedulers:",
               program, program, program, program, program, program, program, program);
  for (const std::string& name : core::scheduler_names()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
}

json::Value summary_json(const core::SimulationResult& result,
                         const core::SimulationConfig& config) {
  json::Object out;
  out["scheduler"] = config.scheduler;
  out["submitted"] = result.submitted;
  out["finished"] = result.finished;
  out["killed"] = result.killed;
  out["stuck"] = result.stuck;
  out["makespan_s"] = result.makespan;
  out["mean_wait_s"] = result.recorder.mean_wait();
  out["median_wait_s"] = result.recorder.median_wait();
  out["max_wait_s"] = result.recorder.max_wait();
  out["mean_turnaround_s"] = result.recorder.mean_turnaround();
  out["mean_bounded_slowdown"] = result.recorder.mean_bounded_slowdown();
  out["avg_utilization"] = result.recorder.average_utilization();
  out["expansions"] = result.recorder.total_expansions();
  out["shrinks"] = result.recorder.total_shrinks();
  out["requeues"] = result.recorder.total_requeues();
  out["lost_node_seconds"] = result.recorder.total_lost_node_seconds();
  out["redone_seconds"] = result.recorder.total_redone_seconds();
  out["wall_seconds"] = result.wall_seconds;
  out["events_processed"] = result.events_processed;
  out["partial"] = result.cancelled;
  return json::Value(std::move(out));
}

double duration_flag(const util::Flags& flags, const std::string& name, double fallback) {
  const std::string raw = flags.get(name, std::string());
  if (raw.empty()) return fallback;
  if (auto parsed = util::parse_duration(raw)) return *parsed;
  std::fprintf(stderr, "warning: cannot parse --%s=%s, using default\n", name.c_str(),
               raw.c_str());
  return fallback;
}

/// Cooperative single-run interrupt: the SIGINT/SIGTERM handler cancels this
/// token, the engine stops between events, and the normal artifact-writing
/// path still runs (summary.json lands with "partial": true, exit 130).
// elsim-lint: allow(mutable-static) -- single-run CLI path; the token's flag is atomic and the handler is installed before the engine starts
sim::CancellationToken g_run_token;

void handle_run_signal(int) {
  g_run_token.cancel(sim::CancelReason::kInterrupted);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  util::set_log_level(util::parse_log_level(flags.get("log", std::string("warn"))));
  for (const std::string& name : flags.duplicates()) {
    std::fprintf(stderr, "warning: --%s given more than once; using the last value\n",
                 name.c_str());
  }

  if (!flags.positional().empty() && flags.positional().front() == "inspect") {
    return cli::run_inspect(flags);
  }
  if (!flags.positional().empty() && flags.positional().front() == "report") {
    return cli::run_report(flags);
  }
  if (!flags.positional().empty() && flags.positional().front() == "profile") {
    return cli::run_profile(flags);
  }
  if (!flags.positional().empty() && flags.positional().front() == "postmortem") {
    return cli::run_postmortem(flags);
  }
  if (!flags.positional().empty() && flags.positional().front() == "sweep-report") {
    return cli::run_sweep_report(flags);
  }
  if (!flags.positional().empty() && flags.positional().front() == "sweep") {
    return cli::run_sweep(flags);
  }

  const std::string platform_path = flags.get("platform", std::string());
  const std::string workload_path = flags.get("workload", std::string());
  const std::string swf_path = flags.get("swf", std::string());
  if (platform_path.empty() || (workload_path.empty() && swf_path.empty())) {
    usage(argv[0]);
    return 2;
  }

  // --profile <file.json> / ELSIM_PROFILE env (a path, or "1" for
  // <out-dir>/profile.json): self-profiler, enabled before any work so the
  // setup phase covers config parsing and workload generation too.
  std::string profile_path = flags.get("profile", std::string());
  if (flags.has("profile") && (profile_path.empty() || profile_path == "true")) {
    std::fprintf(stderr, "error: --profile requires a file path\n");
    usage(argv[0]);
    return 2;
  }
  if (profile_path.empty()) {
    const char* env = std::getenv("ELSIM_PROFILE");
    if (env != nullptr && *env != '\0' && std::string(env) != "0") {
      profile_path = std::string(env) == "1"
                         ? flags.get("out-dir", std::string("results")) + "/profile.json"
                         : std::string(env);
    }
  }
  const bool want_profile = !profile_path.empty();
  if (want_profile) {
    if (!stats::profiler::compiled()) {
      std::fprintf(stderr,
                   "warning: this build compiled the profiler out (ELSIM_NO_PROFILER); "
                   "%s will contain zero phase times\n",
                   profile_path.c_str());
    }
    stats::profiler::set_enabled(true);
  }

  // Hoisted above the try so the exception handlers can name the postmortem
  // destination.
  const std::string out_dir = flags.get("out-dir", std::string("results"));
  // Always-on black box (disable with ELSIM_FLIGHT=0): the ring of recent
  // engine/scheduler/job activity that postmortem.json decodes after an
  // abnormal end. Armed before setup so config parsing is on record too.
  core::FlightRecorder* flight =
      core::FlightRecorder::enabled() ? &core::FlightRecorder::thread_current() : nullptr;
  if (flight != nullptr) flight->arm_phase_tap();

  try {
    // Everything up to job submission bills to the "setup" phase; the scope
    // closes just before the event loop starts.
    std::optional<stats::profiler::ScopedPhase> setup_scope(
        std::in_place, stats::profiler::Phase::kSetup);
    core::SimulationConfig config;
    config.platform = platform::load_cluster_config(platform_path);
    config.scheduler = flags.get("scheduler", std::string("easy-malleable"));
    config.batch.scheduling_interval = flags.get("interval", 0.0);
    config.batch.charge_reconfiguration = !flags.get("no-reconfig-cost", false);
    const std::string policy_name = flags.get("failure-policy", std::string("requeue"));
    if (auto policy = core::failure_policy_from_string(policy_name)) {
      config.batch.failure_policy = *policy;
    } else {
      std::fprintf(stderr, "error: unknown --failure-policy %s\n", policy_name.c_str());
      usage(argv[0]);
      return 2;
    }
    config.batch.restart_overhead = duration_flag(flags, "restart-overhead", 0.0);
    config.batch.max_requeues = static_cast<int>(flags.get("max-requeues", std::int64_t{0}));

    std::vector<workload::Job> jobs;
    if (!workload_path.empty()) {
      jobs = workload::load_workload(workload_path);
    } else {
      workload::SwfImportOptions options;
      options.flops_per_node =
          config.platform.cores_per_node * config.platform.flops_per_core;
      options.processors_per_node =
          static_cast<int>(flags.get("swf-cores-per-node", std::int64_t{1}));
      options.malleable_fraction = flags.get("swf-malleable", 0.0);
      options.max_nodes = static_cast<int>(config.platform.node_count);
      options.seed = static_cast<std::uint64_t>(flags.get("seed", std::int64_t{42}));
      jobs = workload::jobs_from_swf(workload::parse_swf_file(swf_path), options);
    }
    std::printf("loaded %zu jobs, %zu-node %s platform, scheduler %s\n", jobs.size(),
                config.platform.node_count,
                platform::to_string(config.platform.topology).c_str(),
                config.scheduler.c_str());

    // Failure schedule: replay a recorded trace, or draw one from the MTBF
    // model (per-node renewal processes; see docs/RESILIENCE.md).
    std::vector<core::FailureEvent> failures;
    const std::string failure_trace_path = flags.get("failure-trace", std::string());
    const double mtbf = duration_flag(flags, "mtbf", 0.0);
    if (!failure_trace_path.empty()) {
      failures = core::FaultInjector::load_trace(failure_trace_path);
      std::printf("loaded %zu failure events from %s\n", failures.size(),
                  failure_trace_path.c_str());
    } else if (mtbf > 0.0) {
      core::FaultModelConfig fault;
      fault.mtbf = mtbf;
      const std::string dist = flags.get("failure-dist", std::string("exponential"));
      if (dist == "weibull") {
        fault.failure_distribution = core::FailureDistribution::kWeibull;
      } else if (dist != "exponential") {
        std::fprintf(stderr, "error: unknown --failure-dist %s\n", dist.c_str());
        usage(argv[0]);
        return 2;
      }
      fault.weibull_shape = flags.get("weibull-shape", fault.weibull_shape);
      fault.mean_repair = duration_flag(flags, "repair", fault.mean_repair);
      const std::string repair_dist = flags.get("repair-dist", std::string("constant"));
      if (repair_dist == "lognormal") {
        fault.repair_distribution = core::RepairDistribution::kLognormal;
      } else if (repair_dist != "constant") {
        std::fprintf(stderr, "error: unknown --repair-dist %s\n", repair_dist.c_str());
        usage(argv[0]);
        return 2;
      }
      fault.repair_sigma = flags.get("repair-sigma", fault.repair_sigma);
      fault.pod_correlation = flags.get("pod-correlation", 0.0);
      double last_submit = 0.0;
      for (const workload::Job& job : jobs) {
        last_submit = std::max(last_submit, job.submit_time);
      }
      fault.horizon =
          duration_flag(flags, "failure-horizon", std::max(86400.0, 2.0 * last_submit));
      fault.seed = static_cast<std::uint64_t>(flags.get("failure-seed", std::int64_t{1}));
      failures = core::FaultInjector(fault).generate(config.platform.node_count,
                                                     config.platform.pod_size);
      std::printf("generated %zu failure events (mtbf %.0fs, horizon %.0fs, seed %llu)\n",
                  failures.size(), fault.mtbf, fault.horizon,
                  static_cast<unsigned long long>(fault.seed));
    }
    const std::string save_failures = flags.get("save-failure-trace", std::string());
    if (!save_failures.empty()) {
      core::FaultInjector::save_trace(save_failures, failures);
      std::printf("wrote %zu failure events to %s\n", failures.size(), save_failures.c_str());
    }

    if (flight != nullptr) {
      flight->set_context("platform", platform_path);
      flight->set_context("workload", !workload_path.empty() ? workload_path : swf_path);
      flight->set_context("scheduler", config.scheduler);
      // The signal handler can O_CREAT the file but not its directories.
      std::filesystem::create_directories(out_dir);
      core::FlightRecorder::install_crash_handler(flight, out_dir + "/postmortem.json");
    }

    const bool want_trace = flags.get("trace", false);
    const std::string chrome_path = flags.get("chrome-trace", std::string());
    // A bare "--chrome-trace" parses as the boolean value "true"; demand a
    // real path instead of silently writing a file named "true".
    if (flags.has("chrome-trace") && (chrome_path.empty() || chrome_path == "true")) {
      std::fprintf(stderr, "error: --chrome-trace requires a file path\n");
      usage(argv[0]);
      return 2;
    }
    const std::string journal_path = flags.get("journal", std::string());
    if (flags.has("journal") && (journal_path.empty() || journal_path == "true")) {
      std::fprintf(stderr, "error: --journal requires a file path\n");
      usage(argv[0]);
      return 2;
    }
    const double sample_interval = duration_flag(flags, "sample-interval", 0.0);
    // --sample-interval without --timeseries still means "I want the
    // timeline"; a bare --timeseries samples at scheduling points only.
    const bool want_timeseries = flags.get("timeseries", false) || sample_interval > 0.0;
    const bool want_telemetry = flags.get("telemetry", false) || !chrome_path.empty();
    // --validate runs the InvariantChecker for the whole simulation: node
    // conservation, queue/journal/sampler agreement, and monotonic clocks
    // are re-verified at every scheduling point (docs/ANALYSIS.md).
    const bool want_validate =
        flags.get("validate", false) ||
        [] {
          const char* env = std::getenv("ELSIM_VALIDATE");
          return env != nullptr && *env != '\0' && std::string(env) != "0";
        }();
    // Flags only read on branches this invocation skipped (e.g. --swf-* on a
    // --workload run) are still legitimate; register them before diagnosing.
    flags.note_known({"platform", "workload", "swf", "scheduler", "interval",
                      "no-reconfig-cost", "out-dir", "trace", "telemetry", "timeseries",
                      "sample-interval", "chrome-trace", "journal", "profile", "validate",
                      "log", "seed", "swf-cores-per-node", "swf-malleable", "mtbf",
                      "failure-dist", "weibull-shape", "repair", "repair-dist",
                      "repair-sigma", "pod-correlation", "failure-horizon", "failure-seed",
                      "failure-trace", "save-failure-trace", "failure-policy",
                      "restart-overhead", "max-requeues"});
    const auto unknown_flags = flags.unknown_with_suggestions();
    if (!unknown_flags.empty()) {
      for (const auto& [name, suggestion] : unknown_flags) {
        const std::string hint =
            suggestion.empty() ? std::string() : " (did you mean --" + suggestion + "?)";
        std::fprintf(stderr, "error: unknown flag --%s%s\n", name.c_str(), hint.c_str());
      }
      usage(argv[0]);
      return 2;
    }
    if (want_telemetry) telemetry::set_enabled(true);

    // Wire the pieces by hand (instead of run_simulation) so the optional
    // event trace and telemetry sinks can be attached.
    core::SimulationResult result;
    std::vector<workload::JobId> stuck_ids;
    {
      sim::Engine engine;
      platform::Cluster cluster(engine, config.platform);
      core::BatchSystem batch(engine, cluster, core::make_scheduler(config.scheduler),
                              result.recorder, config.batch);
      stats::EventTrace trace;
      if (want_trace) batch.set_event_trace(&trace);
      stats::DecisionJournal journal;
      if (!journal_path.empty()) batch.set_journal(&journal);
      stats::StateSampler sampler(sample_interval);
      if (want_timeseries) batch.set_state_sampler(&sampler);
      telemetry::ChromeTraceBuilder chrome;
      if (!chrome_path.empty()) batch.set_chrome_trace(&chrome);
      core::InvariantChecker checker;
      if (want_validate) {
        checker.attach_engine(engine);
        batch.set_invariant_checker(&checker);
      }
      core::FaultInjector::apply(batch, failures);
      if (flight != nullptr) {
        engine.set_event_hook(&core::FlightRecorder::engine_event_hook, flight);
        batch.set_flight_recorder(flight);
      }
      result.submitted = batch.submit_all(std::move(jobs));
      if (flight != nullptr) {
        flight->note_mark(engine.now(), core::FlightMark::kRunBegin, result.submitted);
      }
      setup_scope.reset();
      // Ctrl-C stops the engine between events; every sink below still
      // flushes, so an interrupted run leaves complete (partial) artifacts.
      engine.set_cancellation(&g_run_token);
      std::signal(SIGINT, handle_run_signal);
      std::signal(SIGTERM, handle_run_signal);
      const auto wall_begin = std::chrono::steady_clock::now();
      engine.run();
      std::signal(SIGINT, SIG_DFL);
      std::signal(SIGTERM, SIG_DFL);
      if (flight != nullptr) {
        if (g_run_token.cancelled()) {
          flight->note_cancel(engine.now(), static_cast<int>(g_run_token.reason()),
                              engine.events_processed());
        } else {
          flight->note_mark(engine.now(), core::FlightMark::kRunEnd,
                            engine.events_processed());
        }
      }
      result.cancelled = engine.cancel_requested();
      result.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_begin)
              .count();
      result.finished = batch.finished_jobs();
      result.killed = batch.killed_jobs();
      result.stuck = batch.queued_jobs() + batch.running_jobs();
      result.makespan = result.recorder.makespan();
      result.events_processed = engine.events_processed();
      result.rebalances = engine.fluid().rebalance_count();
      result.queue_pushes = engine.queue().pushes();
      result.queue_pops = engine.queue().pops();
      result.queue_peak = engine.queue().peak_size();
      result.activities_touched = engine.fluid().activities_touched();
      result.activities_started = engine.fluid().activities_started();
      result.scheduler_invocations = batch.scheduler_invocations();
      result.scheduler_rounds = batch.scheduler_rounds();
      result.scheduler_jobs_scanned = batch.scheduler_jobs_scanned();
      if (result.stuck > 0) stuck_ids = batch.unfinished_job_ids();
      if (want_validate) {
        std::printf("validated %llu scheduling points, %llu events: all invariants hold\n",
                    static_cast<unsigned long long>(checker.scheduling_point_checks()),
                    static_cast<unsigned long long>(checker.events_checked()));
      }
      // Everything from here on is artifact writing, billed to "output".
      ELSIM_PROFILE_SCOPE(stats::profiler::Phase::kOutput);
      if (want_trace) {
        std::filesystem::create_directories(out_dir);
        std::ofstream trace_csv(out_dir + "/trace.csv");
        trace.write_csv(trace_csv);
      }
      if (want_timeseries) {
        std::filesystem::create_directories(out_dir);
        sampler.save(out_dir + "/timeseries.csv");
        std::printf("wrote state timeline (%zu samples, %llu updates) to %s/timeseries.csv\n",
                    sampler.samples().size(),
                    static_cast<unsigned long long>(sampler.updates()), out_dir.c_str());
      }
      if (!journal_path.empty()) {
        const std::filesystem::path parent =
            std::filesystem::path(journal_path).parent_path();
        if (!parent.empty()) std::filesystem::create_directories(parent);
        journal.save(journal_path);
        std::printf("wrote decision journal (%zu records) to %s\n", journal.size(),
                    journal_path.c_str());
      }
      if (want_telemetry) {
        auto& registry = telemetry::Registry::global();
        registry.counter("engine.events").add(result.events_processed);
        registry.gauge("engine.events_per_second")
            .set(result.makespan, result.wall_seconds > 0.0
                                      ? static_cast<double>(result.events_processed) /
                                            result.wall_seconds
                                      : 0.0);
      }
      if (!chrome_path.empty()) {
        chrome.close_open_slices(engine.now());
        for (const telemetry::Span& span : telemetry::Registry::global().spans().spans()) {
          chrome.wall_slice(span.name, span.wall_start_s, span.dur_s, span.items);
        }
        const std::filesystem::path parent =
            std::filesystem::path(chrome_path).parent_path();
        if (!parent.empty()) std::filesystem::create_directories(parent);
        chrome.write_file(chrome_path);
        std::printf("wrote Chrome trace (%zu events) to %s\n", chrome.event_count(),
                    chrome_path.c_str());
      }
    }

    std::filesystem::create_directories(out_dir);
    {
      ELSIM_PROFILE_SCOPE(stats::profiler::Phase::kOutput);
      std::ofstream jobs_csv(out_dir + "/jobs.csv");
      result.recorder.write_jobs_csv(jobs_csv);
      std::ofstream timeline_csv(out_dir + "/timeline.csv");
      result.recorder.write_timeline_csv(timeline_csv);
      json::write_file(out_dir + "/summary.json", summary_json(result, config));
      if (want_telemetry) {
        json::write_file(out_dir + "/telemetry.json",
                         telemetry::Registry::global().to_json());
      }
    }

    // The profile is written last so its window covers every other artifact;
    // the write itself is the only work it cannot see.
    if (want_profile) {
      core::record_profile_counters(result, config.scheduler);
      const std::filesystem::path parent =
          std::filesystem::path(profile_path).parent_path();
      if (!parent.empty()) std::filesystem::create_directories(parent);
      auto& profiler = stats::profiler::Profiler::global();
      json::write_file(profile_path, profiler.report());
      std::printf("wrote profile (%.3f s window) to %s\n", profiler.window_s(),
                  profile_path.c_str());
    }

    std::printf("\n%s\n", json::dump_pretty(summary_json(result, config)).c_str());
    std::printf("\nwrote %s/jobs.csv, %s/timeline.csv, %s/summary.json%s\n", out_dir.c_str(),
                out_dir.c_str(), out_dir.c_str(),
                want_telemetry ? ", telemetry.json" : "");
    if (result.cancelled) {
      std::fprintf(stderr,
                   "warning: run interrupted after %llu events; artifacts describe a "
                   "partial run (summary.json has \"partial\": true)\n",
                   static_cast<unsigned long long>(result.events_processed));
      if (flight != nullptr) {
        flight->write_postmortem(out_dir + "/postmortem.json", "interrupted",
                                 "SIGINT/SIGTERM during run");
        std::fprintf(stderr, "wrote %s/postmortem.json\n", out_dir.c_str());
      }
      return 130;
    }
    if (result.stuck > 0) {
      // Name the offenders (first few) so the user can go straight to
      // `elastisim inspect --job` instead of bisecting the workload.
      std::string ids;
      const std::size_t shown = std::min<std::size_t>(stuck_ids.size(), 5);
      for (std::size_t i = 0; i < shown; ++i) {
        if (!ids.empty()) ids += ", ";
        ids += std::to_string(static_cast<long long>(stuck_ids[i]));
      }
      if (stuck_ids.size() > shown) ids += ", ...";
      std::fprintf(stderr,
                   "warning: %zu jobs never completed (check job sizes vs platform): "
                   "job ids %s\n",
                   result.stuck, ids.c_str());
      return 1;
    }
    return 0;
  } catch (const util::LoadError& error) {
    // Malformed platform/workload input: the structured diagnostic names the
    // file, the JSON path, and expected-vs-found. Loading happens before any
    // sink opens, so no partial output files exist (and a postmortem would
    // only echo the message back).
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  } catch (const core::InvariantViolation& error) {
    std::fprintf(stderr, "error: invariant violation: %s\n", error.what());
    if (flight != nullptr) {
      try {
        flight->write_postmortem(out_dir + "/postmortem.json", "invariant-violation",
                                 error.what());
        std::fprintf(stderr, "wrote %s/postmortem.json\n", out_dir.c_str());
      } catch (...) {
        // A postmortem that cannot be written must not mask the failure.
      }
    }
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    if (flight != nullptr) {
      try {
        flight->write_postmortem(out_dir + "/postmortem.json", "exception", error.what());
        std::fprintf(stderr, "wrote %s/postmortem.json\n", out_dir.c_str());
      } catch (...) {
      }
    }
    return 1;
  }
}
