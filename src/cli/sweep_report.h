// `elastisim sweep-report <sweep-dir>` — render a finished sweep directory
// (its sweep.json, schema elastisim-sweep-v2) into one self-contained
// report.html with policy-comparison tables, seed-variance bands, and a
// cells status heatmap linking failed cells to their postmortems
// (stats/sweep_report.h). Companion to `elastisim report`, one level up:
// report explains one run, sweep-report compares the whole grid.
#pragma once

namespace elastisim::util {
class Flags;
}

namespace elastisim::cli {

/// Exit codes: 0 report written, 1 write failure, 2 usage error or
/// unreadable/mismatched sweep.json.
int run_sweep_report(const util::Flags& flags);

}  // namespace elastisim::cli
