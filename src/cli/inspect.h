// `elastisim inspect` — offline tooling over decision journals written with
// --journal (see docs/CLI.md):
//
//   elastisim inspect --job <id> <journal.jsonl>   why-did-this-job-wait timeline
//   elastisim inspect --diff <a.jsonl> <b.jsonl>   first divergent decision
#pragma once

namespace elastisim::util {
class Flags;
}

namespace elastisim::cli {

/// Returns the process exit code: 0 on success (including a reported
/// divergence), 1 on unreadable/malformed input, 2 on bad usage, 3 when the
/// journal loads fine but holds no decisions for the requested --job.
int run_inspect(const util::Flags& flags);

}  // namespace elastisim::cli
