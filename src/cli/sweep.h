// `elastisim sweep` — fault-tolerant parallel scenario sweeps (docs/SWEEP.md):
//
//   elastisim sweep <sweep.json> [--threads <n>] [--out-dir <dir>]
//                   [--cell-outputs <bool>]
//                   [--inject-crash <i,j,...>] [--inject-stall <i,j,...>]
//
// Expands the spec's (platforms x workloads x schedulers x seeds) grid,
// runs every cell crash-isolated with timeouts/retries, and writes
// <out-dir>/sweep.json plus per-cell artifacts. SIGINT/SIGTERM degrade
// gracefully: in-flight cells are cancelled, pending ones marked skipped,
// and sweep.json still lands with "partial": true.
#pragma once

namespace elastisim::util {
class Flags;
}

namespace elastisim::cli {

/// Returns the process exit code: 0 when every cell succeeded, 2 on bad
/// usage or a malformed spec/platform/workload file, 3 on partial success
/// (some cells failed or were skipped — results were still written).
int run_sweep(const util::Flags& flags);

}  // namespace elastisim::cli
