#include "cli/inspect.h"

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "stats/journal.h"
#include "util/flags.h"

namespace elastisim::cli {

namespace {

void inspect_usage(const std::string& program) {
  std::fprintf(stderr,
               "usage: %s inspect --job <id> <journal.jsonl>\n"
               "       %s inspect --diff <a.jsonl> <b.jsonl>\n",
               program.c_str(), program.c_str());
}

int print_timeline(const std::string& path, workload::JobId job) {
  const std::vector<stats::JournalRecord> records = stats::DecisionJournal::load(path);
  const std::vector<std::string> lines = stats::job_timeline(records, job);
  if (lines.empty()) {
    // Distinct exit code (3) so scripts can tell "job absent from journal"
    // apart from runtime errors (1) and usage errors (2).
    std::fprintf(stderr, "no decisions recorded for job %lld in %s (%zu records)\n",
                 static_cast<long long>(job), path.c_str(), records.size());
    return 3;
  }
  std::printf("job %lld decision timeline (%s, %zu records):\n",
              static_cast<long long>(job), path.c_str(), records.size());
  for (const std::string& line : lines) {
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}

int print_diff(const std::string& path_a, const std::string& path_b) {
  const std::vector<stats::JournalRecord> a = stats::DecisionJournal::load(path_a);
  const std::vector<stats::JournalRecord> b = stats::DecisionJournal::load(path_b);
  const auto divergence = stats::first_divergence(a, b);
  if (!divergence) {
    std::printf("journals identical (%zu records)\n", a.size());
    return 0;
  }
  std::printf("first divergence at record %zu:\n  %s\n", divergence->index,
              divergence->what.c_str());
  return 0;
}

}  // namespace

int run_inspect(const util::Flags& flags) {
  // positional()[0] is the "inspect" subcommand word itself. The flag parser
  // consumes the token after --job / --diff as that flag's value, so the
  // journal paths arrive as one flag value plus trailing positionals.
  const std::vector<std::string>& positional = flags.positional();
  try {
    if (flags.has("job")) {
      const std::int64_t job = flags.get("job", std::int64_t{-1});
      if (job < 0 || positional.size() < 2) {
        inspect_usage(flags.program());
        return 2;
      }
      return print_timeline(positional[1], static_cast<workload::JobId>(job));
    }
    if (flags.has("diff")) {
      const std::string path_a = flags.get("diff", std::string());
      if (path_a.empty() || path_a == "true" || positional.size() < 2) {
        inspect_usage(flags.program());
        return 2;
      }
      return print_diff(path_a, positional[1]);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  inspect_usage(flags.program());
  return 2;
}

}  // namespace elastisim::cli
