#include "cli/report.h"

#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "stats/run_report.h"
#include "util/flags.h"

namespace elastisim::cli {

namespace {

void report_usage(const std::string& program) {
  std::fprintf(stderr,
               "usage: %s report <out-dir> [--out <report.html>]\n"
               "       [--journal <journal.jsonl>] [--failure-trace <file.json>]\n"
               "renders <out-dir>/report.html from jobs.csv, timeseries.csv,\n"
               "summary.json, trace.csv, and the decision journal when present\n",
               program.c_str());
}

/// True when `path` holds a header plus at least one data row.
bool has_data_rows(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;  // no header at all
  while (std::getline(in, line)) {
    if (!line.empty()) return true;
  }
  return false;
}

}  // namespace

int run_report(const util::Flags& flags) {
  // positional()[0] is the "report" subcommand word itself.
  const std::vector<std::string>& positional = flags.positional();
  if (positional.size() < 2) {
    report_usage(flags.program());
    return 2;
  }
  stats::ReportInputs inputs;
  inputs.dir = positional[1];
  inputs.journal_path = flags.get("journal", std::string());
  inputs.failure_trace_path = flags.get("failure-trace", std::string());
  // A bare "--out" parses as the boolean value "true"; demand a real path.
  std::string html_path = flags.get("out", std::string());
  if (flags.has("out") && (html_path.empty() || html_path == "true")) {
    report_usage(flags.program());
    return 2;
  }
  if (html_path.empty()) html_path = inputs.dir + "/report.html";

  // The utilization/queue-depth charts need state samples; refuse up front
  // (before anything is written) rather than render a partial report. The
  // check is gated on jobs.csv so a missing run directory still reports the
  // usual runtime error below.
  const std::string timeseries_path = inputs.dir + "/timeseries.csv";
  if (std::filesystem::exists(std::filesystem::path(inputs.dir) / "jobs.csv") &&
      !has_data_rows(timeseries_path)) {
    std::fprintf(stderr,
                 "error: %s is missing or has no samples — rerun the simulation "
                 "with --timeseries to record the state timeline, then re-run "
                 "report\n",
                 timeseries_path.c_str());
    return 2;
  }

  try {
    const stats::ReportResult result = stats::write_run_report(inputs, html_path);
    std::printf("wrote %s (%zu bytes): %zu jobs, %zu samples, %zu journal records\n",
                html_path.c_str(), result.html_bytes, result.jobs, result.samples,
                result.journal_records);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}

}  // namespace elastisim::cli
