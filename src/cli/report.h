// `elastisim report <out-dir>` — render a simulation run directory into a
// self-contained report.html (stats/run_report.h). Offline companion to
// `elastisim inspect`: inspect answers questions about one job or one
// decision, report gives the whole-run picture at a glance.
#pragma once

namespace elastisim::util {
class Flags;
}

namespace elastisim::cli {

/// Exit codes: 0 report written, 1 runtime error (missing/malformed
/// jobs.csv, unwritable output), 2 usage error or a run directory whose
/// timeseries.csv is missing/empty (rerun with --timeseries).
int run_report(const util::Flags& flags);

}  // namespace elastisim::cli
