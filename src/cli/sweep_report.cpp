#include "cli/sweep_report.h"

#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "json/json.h"
#include "stats/sweep_report.h"
#include "util/flags.h"

namespace elastisim::cli {

namespace {

void sweep_report_usage(const std::string& program) {
  std::fprintf(stderr,
               "usage: %s sweep-report <sweep-dir> [--out <report.html>]\n"
               "renders <sweep-dir>/report.html from <sweep-dir>/sweep.json\n"
               "(schema elastisim-sweep-v2): policy comparison tables with\n"
               "seed-variance bands, slowdown distributions, and a cells status\n"
               "heatmap linking failed cells to their postmortems\n",
               program.c_str());
}

}  // namespace

int run_sweep_report(const util::Flags& flags) {
  // positional()[0] is the "sweep-report" subcommand word itself.
  const std::vector<std::string>& positional = flags.positional();
  if (positional.size() < 2) {
    sweep_report_usage(flags.program());
    return 2;
  }
  const std::string sweep_dir = positional[1];
  // A bare "--out" parses as the boolean value "true"; demand a real path.
  std::string html_path = flags.get("out", std::string());
  if (flags.has("out") && (html_path.empty() || html_path == "true")) {
    sweep_report_usage(flags.program());
    return 2;
  }
  if (html_path.empty()) html_path = sweep_dir + "/report.html";

  const std::string sweep_json = sweep_dir + "/sweep.json";
  json::Value sweep;
  std::string html;
  stats::SweepReportResult result;
  try {
    sweep = json::parse_file(sweep_json);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: cannot load %s: %s\n", sweep_json.c_str(),
                 error.what());
    return 2;
  }
  try {
    html = stats::render_sweep_report(sweep, &result);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s: %s\n", sweep_json.c_str(), error.what());
    return 2;
  }

  // Render-then-write: a failure here never leaves a partial report behind.
  try {
    const std::filesystem::path parent = std::filesystem::path(html_path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    std::ofstream out(html_path, std::ios::binary);
    if (!out) throw std::runtime_error("cannot open for writing");
    out << html;
    out.flush();
    if (!out) throw std::runtime_error("write failed");
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s: %s\n", html_path.c_str(), error.what());
    return 1;
  }

  std::printf("wrote %s (%zu bytes): %zu cells (%zu failed), %zu aggregate groups\n",
              html_path.c_str(), result.html_bytes, result.cells, result.failed_cells,
              result.groups);
  return 0;
}

}  // namespace elastisim::cli
