// `elastisim profile` — offline pretty-printer for profile.json files
// written with --profile (see docs/CLI.md):
//
//   elastisim profile <profile.json> [--top <n>]
//
// Renders the build header, the phase table (calls, inclusive/exclusive wall
// seconds, exclusive share of the profiled window with a percent bar), and
// the work-metric counters.
#pragma once

namespace elastisim::util {
class Flags;
}

namespace elastisim::cli {

/// Returns the process exit code: 0 on success, 1 on unreadable or malformed
/// input, 2 on bad usage.
int run_profile(const util::Flags& flags);

}  // namespace elastisim::cli
