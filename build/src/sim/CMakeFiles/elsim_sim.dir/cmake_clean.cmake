file(REMOVE_RECURSE
  "CMakeFiles/elsim_sim.dir/engine.cpp.o"
  "CMakeFiles/elsim_sim.dir/engine.cpp.o.d"
  "CMakeFiles/elsim_sim.dir/event_queue.cpp.o"
  "CMakeFiles/elsim_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/elsim_sim.dir/fluid.cpp.o"
  "CMakeFiles/elsim_sim.dir/fluid.cpp.o.d"
  "libelsim_sim.a"
  "libelsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
