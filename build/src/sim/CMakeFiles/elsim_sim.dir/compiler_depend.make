# Empty compiler generated dependencies file for elsim_sim.
# This may be replaced when dependencies are built.
