file(REMOVE_RECURSE
  "libelsim_sim.a"
)
