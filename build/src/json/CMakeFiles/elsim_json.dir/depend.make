# Empty dependencies file for elsim_json.
# This may be replaced when dependencies are built.
