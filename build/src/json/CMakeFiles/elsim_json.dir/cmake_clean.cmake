file(REMOVE_RECURSE
  "CMakeFiles/elsim_json.dir/json.cpp.o"
  "CMakeFiles/elsim_json.dir/json.cpp.o.d"
  "libelsim_json.a"
  "libelsim_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsim_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
