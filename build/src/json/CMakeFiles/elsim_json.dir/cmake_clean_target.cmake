file(REMOVE_RECURSE
  "libelsim_json.a"
)
