
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cluster.cpp" "src/platform/CMakeFiles/elsim_platform.dir/cluster.cpp.o" "gcc" "src/platform/CMakeFiles/elsim_platform.dir/cluster.cpp.o.d"
  "/root/repo/src/platform/loader.cpp" "src/platform/CMakeFiles/elsim_platform.dir/loader.cpp.o" "gcc" "src/platform/CMakeFiles/elsim_platform.dir/loader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/elsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/elsim_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
