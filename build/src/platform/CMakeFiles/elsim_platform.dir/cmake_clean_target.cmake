file(REMOVE_RECURSE
  "libelsim_platform.a"
)
