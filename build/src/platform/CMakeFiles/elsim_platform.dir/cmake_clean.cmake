file(REMOVE_RECURSE
  "CMakeFiles/elsim_platform.dir/cluster.cpp.o"
  "CMakeFiles/elsim_platform.dir/cluster.cpp.o.d"
  "CMakeFiles/elsim_platform.dir/loader.cpp.o"
  "CMakeFiles/elsim_platform.dir/loader.cpp.o.d"
  "libelsim_platform.a"
  "libelsim_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsim_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
