# Empty dependencies file for elsim_platform.
# This may be replaced when dependencies are built.
