# Empty dependencies file for elsim_util.
# This may be replaced when dependencies are built.
