file(REMOVE_RECURSE
  "CMakeFiles/elsim_util.dir/csv.cpp.o"
  "CMakeFiles/elsim_util.dir/csv.cpp.o.d"
  "CMakeFiles/elsim_util.dir/flags.cpp.o"
  "CMakeFiles/elsim_util.dir/flags.cpp.o.d"
  "CMakeFiles/elsim_util.dir/log.cpp.o"
  "CMakeFiles/elsim_util.dir/log.cpp.o.d"
  "CMakeFiles/elsim_util.dir/rng.cpp.o"
  "CMakeFiles/elsim_util.dir/rng.cpp.o.d"
  "CMakeFiles/elsim_util.dir/units.cpp.o"
  "CMakeFiles/elsim_util.dir/units.cpp.o.d"
  "libelsim_util.a"
  "libelsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
