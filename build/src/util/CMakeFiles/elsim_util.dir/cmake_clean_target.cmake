file(REMOVE_RECURSE
  "libelsim_util.a"
)
