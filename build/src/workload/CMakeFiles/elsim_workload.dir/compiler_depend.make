# Empty compiler generated dependencies file for elsim_workload.
# This may be replaced when dependencies are built.
