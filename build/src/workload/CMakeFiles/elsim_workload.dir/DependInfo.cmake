
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/application.cpp" "src/workload/CMakeFiles/elsim_workload.dir/application.cpp.o" "gcc" "src/workload/CMakeFiles/elsim_workload.dir/application.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/elsim_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/elsim_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/job.cpp" "src/workload/CMakeFiles/elsim_workload.dir/job.cpp.o" "gcc" "src/workload/CMakeFiles/elsim_workload.dir/job.cpp.o.d"
  "/root/repo/src/workload/patterns.cpp" "src/workload/CMakeFiles/elsim_workload.dir/patterns.cpp.o" "gcc" "src/workload/CMakeFiles/elsim_workload.dir/patterns.cpp.o.d"
  "/root/repo/src/workload/swf.cpp" "src/workload/CMakeFiles/elsim_workload.dir/swf.cpp.o" "gcc" "src/workload/CMakeFiles/elsim_workload.dir/swf.cpp.o.d"
  "/root/repo/src/workload/workload_io.cpp" "src/workload/CMakeFiles/elsim_workload.dir/workload_io.cpp.o" "gcc" "src/workload/CMakeFiles/elsim_workload.dir/workload_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/json/CMakeFiles/elsim_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
