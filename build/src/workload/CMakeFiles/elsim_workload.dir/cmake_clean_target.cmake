file(REMOVE_RECURSE
  "libelsim_workload.a"
)
