file(REMOVE_RECURSE
  "CMakeFiles/elsim_workload.dir/application.cpp.o"
  "CMakeFiles/elsim_workload.dir/application.cpp.o.d"
  "CMakeFiles/elsim_workload.dir/generator.cpp.o"
  "CMakeFiles/elsim_workload.dir/generator.cpp.o.d"
  "CMakeFiles/elsim_workload.dir/job.cpp.o"
  "CMakeFiles/elsim_workload.dir/job.cpp.o.d"
  "CMakeFiles/elsim_workload.dir/patterns.cpp.o"
  "CMakeFiles/elsim_workload.dir/patterns.cpp.o.d"
  "CMakeFiles/elsim_workload.dir/swf.cpp.o"
  "CMakeFiles/elsim_workload.dir/swf.cpp.o.d"
  "CMakeFiles/elsim_workload.dir/workload_io.cpp.o"
  "CMakeFiles/elsim_workload.dir/workload_io.cpp.o.d"
  "libelsim_workload.a"
  "libelsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
