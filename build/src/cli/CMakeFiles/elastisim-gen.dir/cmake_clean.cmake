file(REMOVE_RECURSE
  "CMakeFiles/elastisim-gen.dir/gen_main.cpp.o"
  "CMakeFiles/elastisim-gen.dir/gen_main.cpp.o.d"
  "elastisim-gen"
  "elastisim-gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastisim-gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
