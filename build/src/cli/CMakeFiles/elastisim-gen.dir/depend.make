# Empty dependencies file for elastisim-gen.
# This may be replaced when dependencies are built.
