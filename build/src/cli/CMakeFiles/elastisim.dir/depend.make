# Empty dependencies file for elastisim.
# This may be replaced when dependencies are built.
