file(REMOVE_RECURSE
  "CMakeFiles/elastisim.dir/main.cpp.o"
  "CMakeFiles/elastisim.dir/main.cpp.o.d"
  "elastisim"
  "elastisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
