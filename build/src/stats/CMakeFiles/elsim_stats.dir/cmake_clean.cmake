file(REMOVE_RECURSE
  "CMakeFiles/elsim_stats.dir/metrics.cpp.o"
  "CMakeFiles/elsim_stats.dir/metrics.cpp.o.d"
  "CMakeFiles/elsim_stats.dir/trace.cpp.o"
  "CMakeFiles/elsim_stats.dir/trace.cpp.o.d"
  "libelsim_stats.a"
  "libelsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
