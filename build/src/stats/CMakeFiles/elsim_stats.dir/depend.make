# Empty dependencies file for elsim_stats.
# This may be replaced when dependencies are built.
