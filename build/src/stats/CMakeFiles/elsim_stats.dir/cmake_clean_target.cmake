file(REMOVE_RECURSE
  "libelsim_stats.a"
)
