
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batch_system.cpp" "src/core/CMakeFiles/elsim_core.dir/batch_system.cpp.o" "gcc" "src/core/CMakeFiles/elsim_core.dir/batch_system.cpp.o.d"
  "/root/repo/src/core/job_execution.cpp" "src/core/CMakeFiles/elsim_core.dir/job_execution.cpp.o" "gcc" "src/core/CMakeFiles/elsim_core.dir/job_execution.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/elsim_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/elsim_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/schedulers/conservative.cpp" "src/core/CMakeFiles/elsim_core.dir/schedulers/conservative.cpp.o" "gcc" "src/core/CMakeFiles/elsim_core.dir/schedulers/conservative.cpp.o.d"
  "/root/repo/src/core/schedulers/easy_backfill.cpp" "src/core/CMakeFiles/elsim_core.dir/schedulers/easy_backfill.cpp.o" "gcc" "src/core/CMakeFiles/elsim_core.dir/schedulers/easy_backfill.cpp.o.d"
  "/root/repo/src/core/schedulers/fcfs.cpp" "src/core/CMakeFiles/elsim_core.dir/schedulers/fcfs.cpp.o" "gcc" "src/core/CMakeFiles/elsim_core.dir/schedulers/fcfs.cpp.o.d"
  "/root/repo/src/core/schedulers/malleable.cpp" "src/core/CMakeFiles/elsim_core.dir/schedulers/malleable.cpp.o" "gcc" "src/core/CMakeFiles/elsim_core.dir/schedulers/malleable.cpp.o.d"
  "/root/repo/src/core/schedulers/priority.cpp" "src/core/CMakeFiles/elsim_core.dir/schedulers/priority.cpp.o" "gcc" "src/core/CMakeFiles/elsim_core.dir/schedulers/priority.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/core/CMakeFiles/elsim_core.dir/simulation.cpp.o" "gcc" "src/core/CMakeFiles/elsim_core.dir/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/elsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/elsim_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/elsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/elsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/elsim_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
