file(REMOVE_RECURSE
  "CMakeFiles/elsim_core.dir/batch_system.cpp.o"
  "CMakeFiles/elsim_core.dir/batch_system.cpp.o.d"
  "CMakeFiles/elsim_core.dir/job_execution.cpp.o"
  "CMakeFiles/elsim_core.dir/job_execution.cpp.o.d"
  "CMakeFiles/elsim_core.dir/scheduler.cpp.o"
  "CMakeFiles/elsim_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/elsim_core.dir/schedulers/conservative.cpp.o"
  "CMakeFiles/elsim_core.dir/schedulers/conservative.cpp.o.d"
  "CMakeFiles/elsim_core.dir/schedulers/easy_backfill.cpp.o"
  "CMakeFiles/elsim_core.dir/schedulers/easy_backfill.cpp.o.d"
  "CMakeFiles/elsim_core.dir/schedulers/fcfs.cpp.o"
  "CMakeFiles/elsim_core.dir/schedulers/fcfs.cpp.o.d"
  "CMakeFiles/elsim_core.dir/schedulers/malleable.cpp.o"
  "CMakeFiles/elsim_core.dir/schedulers/malleable.cpp.o.d"
  "CMakeFiles/elsim_core.dir/schedulers/priority.cpp.o"
  "CMakeFiles/elsim_core.dir/schedulers/priority.cpp.o.d"
  "CMakeFiles/elsim_core.dir/simulation.cpp.o"
  "CMakeFiles/elsim_core.dir/simulation.cpp.o.d"
  "libelsim_core.a"
  "libelsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
