# Empty dependencies file for elsim_core.
# This may be replaced when dependencies are built.
