file(REMOVE_RECURSE
  "libelsim_core.a"
)
