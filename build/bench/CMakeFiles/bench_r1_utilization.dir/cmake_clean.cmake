file(REMOVE_RECURSE
  "CMakeFiles/bench_r1_utilization.dir/bench_r1_utilization.cpp.o"
  "CMakeFiles/bench_r1_utilization.dir/bench_r1_utilization.cpp.o.d"
  "bench_r1_utilization"
  "bench_r1_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r1_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
