# Empty dependencies file for bench_r5_io_interference.
# This may be replaced when dependencies are built.
