file(REMOVE_RECURSE
  "CMakeFiles/bench_r5_io_interference.dir/bench_r5_io_interference.cpp.o"
  "CMakeFiles/bench_r5_io_interference.dir/bench_r5_io_interference.cpp.o.d"
  "bench_r5_io_interference"
  "bench_r5_io_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r5_io_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
