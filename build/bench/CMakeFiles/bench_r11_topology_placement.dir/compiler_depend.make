# Empty compiler generated dependencies file for bench_r11_topology_placement.
# This may be replaced when dependencies are built.
