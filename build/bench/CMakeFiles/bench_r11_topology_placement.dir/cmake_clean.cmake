file(REMOVE_RECURSE
  "CMakeFiles/bench_r11_topology_placement.dir/bench_r11_topology_placement.cpp.o"
  "CMakeFiles/bench_r11_topology_placement.dir/bench_r11_topology_placement.cpp.o.d"
  "bench_r11_topology_placement"
  "bench_r11_topology_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r11_topology_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
