file(REMOVE_RECURSE
  "CMakeFiles/bench_r13_workflows.dir/bench_r13_workflows.cpp.o"
  "CMakeFiles/bench_r13_workflows.dir/bench_r13_workflows.cpp.o.d"
  "bench_r13_workflows"
  "bench_r13_workflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r13_workflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
