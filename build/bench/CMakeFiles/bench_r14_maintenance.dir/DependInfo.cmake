
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_r14_maintenance.cpp" "bench/CMakeFiles/bench_r14_maintenance.dir/bench_r14_maintenance.cpp.o" "gcc" "bench/CMakeFiles/bench_r14_maintenance.dir/bench_r14_maintenance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/elsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/elsim_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/elsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/elsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/elsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/elsim_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
