file(REMOVE_RECURSE
  "CMakeFiles/bench_r14_maintenance.dir/bench_r14_maintenance.cpp.o"
  "CMakeFiles/bench_r14_maintenance.dir/bench_r14_maintenance.cpp.o.d"
  "bench_r14_maintenance"
  "bench_r14_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r14_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
