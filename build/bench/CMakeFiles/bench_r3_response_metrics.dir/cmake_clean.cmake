file(REMOVE_RECURSE
  "CMakeFiles/bench_r3_response_metrics.dir/bench_r3_response_metrics.cpp.o"
  "CMakeFiles/bench_r3_response_metrics.dir/bench_r3_response_metrics.cpp.o.d"
  "bench_r3_response_metrics"
  "bench_r3_response_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r3_response_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
