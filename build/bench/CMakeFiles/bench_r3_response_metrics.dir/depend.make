# Empty dependencies file for bench_r3_response_metrics.
# This may be replaced when dependencies are built.
