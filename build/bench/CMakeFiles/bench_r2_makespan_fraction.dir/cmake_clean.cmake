file(REMOVE_RECURSE
  "CMakeFiles/bench_r2_makespan_fraction.dir/bench_r2_makespan_fraction.cpp.o"
  "CMakeFiles/bench_r2_makespan_fraction.dir/bench_r2_makespan_fraction.cpp.o.d"
  "bench_r2_makespan_fraction"
  "bench_r2_makespan_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r2_makespan_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
