# Empty compiler generated dependencies file for bench_r2_makespan_fraction.
# This may be replaced when dependencies are built.
