# Empty dependencies file for bench_r7_reconfig_ablation.
# This may be replaced when dependencies are built.
