# Empty dependencies file for bench_r6_evolving.
# This may be replaced when dependencies are built.
