file(REMOVE_RECURSE
  "CMakeFiles/bench_r6_evolving.dir/bench_r6_evolving.cpp.o"
  "CMakeFiles/bench_r6_evolving.dir/bench_r6_evolving.cpp.o.d"
  "bench_r6_evolving"
  "bench_r6_evolving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r6_evolving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
