file(REMOVE_RECURSE
  "CMakeFiles/bench_r4_scheduler_comparison.dir/bench_r4_scheduler_comparison.cpp.o"
  "CMakeFiles/bench_r4_scheduler_comparison.dir/bench_r4_scheduler_comparison.cpp.o.d"
  "bench_r4_scheduler_comparison"
  "bench_r4_scheduler_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r4_scheduler_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
