# Empty compiler generated dependencies file for bench_r4_scheduler_comparison.
# This may be replaced when dependencies are built.
