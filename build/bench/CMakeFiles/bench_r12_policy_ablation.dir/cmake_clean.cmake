file(REMOVE_RECURSE
  "CMakeFiles/bench_r12_policy_ablation.dir/bench_r12_policy_ablation.cpp.o"
  "CMakeFiles/bench_r12_policy_ablation.dir/bench_r12_policy_ablation.cpp.o.d"
  "bench_r12_policy_ablation"
  "bench_r12_policy_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r12_policy_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
