# Empty compiler generated dependencies file for bench_r10_failures.
# This may be replaced when dependencies are built.
