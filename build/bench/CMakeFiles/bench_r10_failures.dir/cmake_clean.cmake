file(REMOVE_RECURSE
  "CMakeFiles/bench_r10_failures.dir/bench_r10_failures.cpp.o"
  "CMakeFiles/bench_r10_failures.dir/bench_r10_failures.cpp.o.d"
  "bench_r10_failures"
  "bench_r10_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_r10_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
