# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/elsim_tests[1]_include.cmake")
add_test(cli_json_workload "/root/repo/build/src/cli/elastisim" "--platform" "/root/repo/data/platform_small.json" "--workload" "/root/repo/data/workload_demo.json" "--out-dir" "/root/repo/build/cli_smoke" "--trace")
set_tests_properties(cli_json_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_generated_workload "/root/repo/build/src/cli/elastisim-gen" "--jobs" "15" "--malleable" "0.5" "--seed" "9" "--out" "/root/repo/build/cli_smoke_workload.json")
set_tests_properties(cli_generated_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;41;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_run_generated "/root/repo/build/src/cli/elastisim" "--platform" "/root/repo/data/platform_small.json" "--workload" "/root/repo/build/cli_smoke_workload.json" "--scheduler" "fair-share" "--out-dir" "/root/repo/build/cli_smoke2")
set_tests_properties(cli_run_generated PROPERTIES  DEPENDS "cli_generated_workload" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
