# Empty compiler generated dependencies file for elsim_tests.
# This may be replaced when dependencies are built.
