
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analytic_validation_test.cpp" "tests/CMakeFiles/elsim_tests.dir/analytic_validation_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/analytic_validation_test.cpp.o.d"
  "/root/repo/tests/batch_system_test.cpp" "tests/CMakeFiles/elsim_tests.dir/batch_system_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/batch_system_test.cpp.o.d"
  "/root/repo/tests/cluster_test.cpp" "tests/CMakeFiles/elsim_tests.dir/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/cluster_test.cpp.o.d"
  "/root/repo/tests/dependency_test.cpp" "tests/CMakeFiles/elsim_tests.dir/dependency_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/dependency_test.cpp.o.d"
  "/root/repo/tests/event_queue_test.cpp" "tests/CMakeFiles/elsim_tests.dir/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/event_queue_test.cpp.o.d"
  "/root/repo/tests/failure_test.cpp" "tests/CMakeFiles/elsim_tests.dir/failure_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/failure_test.cpp.o.d"
  "/root/repo/tests/fair_share_test.cpp" "tests/CMakeFiles/elsim_tests.dir/fair_share_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/fair_share_test.cpp.o.d"
  "/root/repo/tests/fluid_test.cpp" "tests/CMakeFiles/elsim_tests.dir/fluid_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/fluid_test.cpp.o.d"
  "/root/repo/tests/gpu_test.cpp" "tests/CMakeFiles/elsim_tests.dir/gpu_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/gpu_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/elsim_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/job_execution_test.cpp" "tests/CMakeFiles/elsim_tests.dir/job_execution_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/job_execution_test.cpp.o.d"
  "/root/repo/tests/json_test.cpp" "tests/CMakeFiles/elsim_tests.dir/json_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/json_test.cpp.o.d"
  "/root/repo/tests/kernel_edge_test.cpp" "tests/CMakeFiles/elsim_tests.dir/kernel_edge_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/kernel_edge_test.cpp.o.d"
  "/root/repo/tests/latency_test.cpp" "tests/CMakeFiles/elsim_tests.dir/latency_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/latency_test.cpp.o.d"
  "/root/repo/tests/maintenance_test.cpp" "tests/CMakeFiles/elsim_tests.dir/maintenance_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/maintenance_test.cpp.o.d"
  "/root/repo/tests/metrics_test.cpp" "tests/CMakeFiles/elsim_tests.dir/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/metrics_test.cpp.o.d"
  "/root/repo/tests/patterns_test.cpp" "tests/CMakeFiles/elsim_tests.dir/patterns_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/patterns_test.cpp.o.d"
  "/root/repo/tests/placement_test.cpp" "tests/CMakeFiles/elsim_tests.dir/placement_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/placement_test.cpp.o.d"
  "/root/repo/tests/priority_test.cpp" "tests/CMakeFiles/elsim_tests.dir/priority_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/priority_test.cpp.o.d"
  "/root/repo/tests/property_sweep_test.cpp" "tests/CMakeFiles/elsim_tests.dir/property_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/property_sweep_test.cpp.o.d"
  "/root/repo/tests/scheduler_edge_test.cpp" "tests/CMakeFiles/elsim_tests.dir/scheduler_edge_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/scheduler_edge_test.cpp.o.d"
  "/root/repo/tests/schedulers_test.cpp" "tests/CMakeFiles/elsim_tests.dir/schedulers_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/schedulers_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/elsim_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/elsim_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/elsim_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/elsim_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/elsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/elsim_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/elsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/elsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/elsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/elsim_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
