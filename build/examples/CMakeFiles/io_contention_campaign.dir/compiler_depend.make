# Empty compiler generated dependencies file for io_contention_campaign.
# This may be replaced when dependencies are built.
