file(REMOVE_RECURSE
  "CMakeFiles/io_contention_campaign.dir/io_contention_campaign.cpp.o"
  "CMakeFiles/io_contention_campaign.dir/io_contention_campaign.cpp.o.d"
  "io_contention_campaign"
  "io_contention_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_contention_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
