# Empty dependencies file for evolving_adaptive.
# This may be replaced when dependencies are built.
