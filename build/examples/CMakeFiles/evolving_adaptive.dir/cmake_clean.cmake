file(REMOVE_RECURSE
  "CMakeFiles/evolving_adaptive.dir/evolving_adaptive.cpp.o"
  "CMakeFiles/evolving_adaptive.dir/evolving_adaptive.cpp.o.d"
  "evolving_adaptive"
  "evolving_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolving_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
