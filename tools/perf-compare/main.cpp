// perf-compare — diff two BENCH_perf.json performance trajectories, or
// render the trend across an archived history of them.
//
//   perf-compare <baseline.json> <candidate.json> [--threshold 0.30]
//                [--json <deltas.json>]
//   perf-compare --history <dir> [--json <trend.json>]
//
// Matches cells by (jobs, scheduler), prints per-cell percentage deltas for
// events/sec, wall seconds per 10k jobs, and peak RSS, and exits non-zero if
// any matched cell's events/sec regressed by more than the threshold
// (default 30%, the tolerance the CI perf-smoke job enforces; see
// docs/OBSERVABILITY.md for why it is this loose). Mismatched build
// provenance (compiler, flags, build type) only warns: the numbers are still
// printed, but the regression verdict is unreliable across builds. The same
// goes for mixed benchmark modes (a --quick cell against a full-grid cell).
//
// --json writes the same comparison machine-readably (schema
// "elastisim-perf-compare-v1": per-cell baseline/candidate values and
// ratios plus the verdict) so CI can archive deltas alongside artifacts.
//
// --history consumes a directory of archived snapshots — BENCH_perf.json
// files and/or perf-compare --json outputs, ordered by filename — and prints
// the events/sec and s/10k-jobs trend per cell across them (--json writes
// schema "elastisim-perf-history-v1").
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "json/json.h"
#include "util/flags.h"

using namespace elastisim;

namespace {

struct CellKey {
  std::int64_t jobs = 0;
  std::string scheduler;
};

bool same_key(const CellKey& a, const CellKey& b) {
  return a.jobs == b.jobs && a.scheduler == b.scheduler;
}

const json::Value* find_cell(const json::Value& file, const CellKey& key) {
  const json::Value* cells = file.find("cells");
  if (!cells || !cells->is_array()) return nullptr;
  for (const json::Value& cell : cells->as_array()) {
    CellKey candidate{cell.member_or("jobs", std::int64_t{0}),
                      cell.member_or("scheduler", std::string())};
    if (same_key(candidate, key)) return &cell;
  }
  return nullptr;
}

/// "+12.3%" / "-4.5%" / "n/a" when the baseline value is ~zero.
std::string delta_percent(double baseline, double candidate) {
  if (std::fabs(baseline) < 1e-12) return "n/a";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%+.1f%%", 100.0 * (candidate - baseline) / baseline);
  return buffer;
}

/// A cell's benchmark mode; older trajectories predate the per-cell tag, so
/// fall back to the file-level --quick flag.
std::string cell_mode(const json::Value& cell, const json::Value& file) {
  const std::string tagged = cell.member_or("mode", "");
  if (!tagged.empty()) return tagged;
  return file.member_or("quick", false) ? "quick" : "full";
}

/// Warns about any build-provenance field that differs (satellite: comparing
/// trajectories from different compilers/flags is apples to oranges).
void warn_on_build_mismatch(const json::Value& baseline, const json::Value& candidate) {
  const json::Value* base_build = baseline.find("build");
  const json::Value* cand_build = candidate.find("build");
  if (!base_build || !cand_build) return;
  for (const char* key : {"compiler", "build_type", "flags", "assertions",
                          "sanitizers", "profiler_compiled"}) {
    const json::Value* a = base_build->find(key);
    const json::Value* b = cand_build->find(key);
    const std::string lhs = a ? json::dump(*a) : "(missing)";
    const std::string rhs = b ? json::dump(*b) : "(missing)";
    if (lhs != rhs) {
      std::fprintf(stderr,
                   "warning: build mismatch on \"%s\": baseline %s vs candidate %s "
                   "(deltas below are not comparable)\n",
                   key, lhs.c_str(), rhs.c_str());
    }
  }
}

void usage(const std::string& program) {
  std::fprintf(stderr,
               "usage: %s <baseline BENCH_perf.json> <candidate BENCH_perf.json> "
               "[--threshold 0.30] [--json <deltas.json>]\n"
               "   or: %s --history <snapshot-dir> [--json <trend.json>]\n",
               program.c_str(), program.c_str());
}

// --------------------------------------------------------------------------
// --history: trend across archived snapshots
// --------------------------------------------------------------------------

/// One archived data point: a BENCH_perf.json (direct values) or a
/// perf-compare --json output (candidate-side values).
struct Snapshot {
  std::string name;  ///< filename, the ordering key
  std::string kind;  ///< "bench-perf" or "perf-compare"
  std::string mode;  ///< quick/full/mixed/unknown
};

struct TrendCell {
  CellKey key;
  /// Parallel to the snapshots vector; absent cells stay nullopt.
  std::vector<std::optional<double>> events_per_second;
  std::vector<std::optional<double>> wall_s_per_10k_jobs;
};

TrendCell& trend_cell(std::vector<TrendCell>& cells, const CellKey& key,
                      std::size_t snapshots) {
  for (TrendCell& cell : cells) {
    if (same_key(cell.key, key)) return cell;
  }
  TrendCell fresh;
  fresh.key = key;
  fresh.events_per_second.assign(snapshots, std::nullopt);
  fresh.wall_s_per_10k_jobs.assign(snapshots, std::nullopt);
  cells.push_back(std::move(fresh));
  return cells.back();
}

int run_history(const std::string& dir, const std::string& json_path) {
  std::vector<std::filesystem::path> paths;
  try {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension() != ".json") continue;
      paths.push_back(entry.path());
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: cannot read %s: %s\n", dir.c_str(), error.what());
    return 2;
  }
  // Filename order is the timeline: archive snapshots with sortable names
  // (0001.json, 2026-08-07.json, ...).
  std::sort(paths.begin(), paths.end(),
            [](const std::filesystem::path& a, const std::filesystem::path& b) {
              return a.filename().string() < b.filename().string();
            });

  std::vector<Snapshot> snapshots;
  std::vector<json::Value> documents;
  for (const std::filesystem::path& path : paths) {
    json::Value document;
    try {
      document = json::parse_file(path.string());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "warning: skipping %s: %s\n", path.string().c_str(),
                   error.what());
      continue;
    }
    const std::string schema = document.member_or("schema", "");
    Snapshot snapshot;
    snapshot.name = path.filename().string();
    if (schema == "elastisim-bench-perf-v1") {
      snapshot.kind = "bench-perf";
    } else if (schema == "elastisim-perf-compare-v1") {
      snapshot.kind = "perf-compare";
      snapshot.mode = "unknown";  // compare outputs do not carry modes
    } else {
      std::fprintf(stderr, "warning: skipping %s: unexpected schema \"%s\"\n",
                   path.string().c_str(), schema.c_str());
      continue;
    }
    snapshots.push_back(std::move(snapshot));
    documents.push_back(std::move(document));
  }
  if (snapshots.empty()) {
    std::fprintf(stderr,
                 "error: no usable snapshots in %s (want BENCH_perf.json or "
                 "perf-compare --json files)\n",
                 dir.c_str());
    return 2;
  }
  if (snapshots.size() < 2) {
    std::fprintf(stderr, "warning: only one snapshot in %s — no trend to show yet\n",
                 dir.c_str());
  }

  // Fold every snapshot's cells into the per-key series, keys in
  // first-appearance order across the timeline.
  std::vector<TrendCell> cells;
  for (std::size_t i = 0; i < documents.size(); ++i) {
    const json::Value& document = documents[i];
    Snapshot& snapshot = snapshots[i];
    const json::Value* file_cells = document.find("cells");
    if (file_cells == nullptr || !file_cells->is_array()) continue;
    for (const json::Value& cell : file_cells->as_array()) {
      CellKey key{cell.member_or("jobs", std::int64_t{0}),
                  cell.member_or("scheduler", std::string())};
      if (snapshot.kind == "bench-perf") {
        const std::string mode = cell_mode(cell, document);
        if (snapshot.mode.empty()) {
          snapshot.mode = mode;
        } else if (snapshot.mode != mode) {
          snapshot.mode = "mixed";
        }
        TrendCell& series = trend_cell(cells, key, snapshots.size());
        series.events_per_second[i] = cell.member_or("events_per_second", 0.0);
        series.wall_s_per_10k_jobs[i] = cell.member_or("wall_s_per_10k_jobs", 0.0);
      } else {
        // perf-compare output: only matched cells carry candidate values.
        if (cell.member_or("status", "") != "matched") continue;
        const json::Value* metrics = cell.find("metrics");
        if (metrics == nullptr) continue;
        TrendCell& series = trend_cell(cells, key, snapshots.size());
        if (const json::Value* eps = metrics->find("events_per_second")) {
          series.events_per_second[i] = eps->member_or("candidate", 0.0);
        }
        if (const json::Value* wall = metrics->find("wall_s_per_10k_jobs")) {
          series.wall_s_per_10k_jobs[i] = wall->member_or("candidate", 0.0);
        }
      }
    }
  }
  if (cells.empty()) {
    std::fprintf(stderr, "error: snapshots in %s carry no cells\n", dir.c_str());
    return 2;
  }

  // Mixed benchmark modes across the timeline make the trend lines jump for
  // reasons that have nothing to do with performance.
  bool mixed_modes = false;
  std::string first_mode;
  for (const Snapshot& snapshot : snapshots) {
    if (snapshot.mode.empty() || snapshot.mode == "unknown") continue;
    if (first_mode.empty()) {
      first_mode = snapshot.mode;
    } else if (snapshot.mode != first_mode) {
      mixed_modes = true;
    }
  }
  if (mixed_modes) {
    std::fprintf(stderr,
                 "warning: history mixes quick and full benchmark modes — trend "
                 "deltas across mode boundaries are not comparable\n");
  }

  std::printf("history: %zu snapshot%s from %s\n", snapshots.size(),
              snapshots.size() == 1 ? "" : "s", dir.c_str());
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    std::printf("  [%zu] %s (%s%s%s)\n", i, snapshots[i].name.c_str(),
                snapshots[i].kind.c_str(), snapshots[i].mode.empty() ? "" : ", ",
                snapshots[i].mode.c_str());
  }

  const auto print_trend = [&](const char* title,
                               std::vector<std::optional<double>> TrendCell::* series,
                               int precision) {
    std::printf("\n%s\n", title);
    std::printf("%-16s %6s", "scheduler", "jobs");
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
      std::printf(" %10s", ("[" + std::to_string(i) + "]").c_str());
    }
    std::printf(" %10s\n", "trend");
    for (const TrendCell& cell : cells) {
      std::printf("%-16s %6lld", cell.key.scheduler.c_str(),
                  static_cast<long long>(cell.key.jobs));
      std::optional<double> first;
      std::optional<double> last;
      std::size_t points = 0;
      for (const std::optional<double>& value : cell.*series) {
        if (value.has_value()) {
          std::printf(" %10.*f", precision, *value);
          if (!first.has_value()) first = value;
          last = value;
          ++points;
        } else {
          std::printf(" %10s", "-");
        }
      }
      // first-to-last delta; meaningless with fewer than two data points.
      if (points >= 2) {
        std::printf(" %10s", delta_percent(*first, *last).c_str());
      } else {
        std::printf(" %10s", "n/a");
      }
      std::printf("\n");
    }
  };
  print_trend("events/sec trend (higher is better):",
              &TrendCell::events_per_second, 0);
  print_trend("wall seconds per 10k jobs trend (lower is better):",
              &TrendCell::wall_s_per_10k_jobs, 3);

  if (!json_path.empty()) {
    json::Object out;
    out["schema"] = "elastisim-perf-history-v1";
    out["snapshot_count"] = snapshots.size();
    out["mixed_modes"] = mixed_modes;
    json::Array snapshot_list;
    for (const Snapshot& snapshot : snapshots) {
      json::Object entry;
      entry["file"] = snapshot.name;
      entry["kind"] = snapshot.kind;
      entry["mode"] = snapshot.mode.empty() ? std::string("unknown") : snapshot.mode;
      snapshot_list.emplace_back(std::move(entry));
    }
    out["snapshots"] = json::Value(std::move(snapshot_list));
    json::Array cell_list;
    for (const TrendCell& cell : cells) {
      json::Object entry;
      entry["scheduler"] = cell.key.scheduler;
      entry["jobs"] = cell.key.jobs;
      const auto series_json = [&](const std::vector<std::optional<double>>& series) {
        json::Array values;
        for (const std::optional<double>& value : series) {
          if (value.has_value()) {
            values.emplace_back(*value);
          } else {
            values.emplace_back(nullptr);
          }
        }
        return json::Value(std::move(values));
      };
      entry["events_per_second"] = series_json(cell.events_per_second);
      entry["wall_s_per_10k_jobs"] = series_json(cell.wall_s_per_10k_jobs);
      cell_list.emplace_back(std::move(entry));
    }
    out["cells"] = json::Value(std::move(cell_list));
    try {
      json::write_file(json_path, json::Value(std::move(out)));
      std::printf("wrote %s\n", json_path.c_str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto& positional = flags.positional();
  const std::string json_path = flags.get("json", std::string());
  if (flags.has("json") && (json_path.empty() || json_path == "true")) {
    std::fprintf(stderr, "error: --json requires a file path\n");
    return 2;
  }

  const std::string history_dir = flags.get("history", std::string());
  if (flags.has("history")) {
    if (history_dir.empty() || history_dir == "true" || !positional.empty()) {
      usage(flags.program());
      return 2;
    }
    return run_history(history_dir, json_path);
  }

  if (positional.size() != 2) {
    usage(flags.program());
    return 2;
  }
  const double threshold = flags.get("threshold", 0.30);

  json::Value baseline;
  json::Value candidate;
  try {
    baseline = json::parse_file(positional[0]);
    candidate = json::parse_file(positional[1]);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  for (const json::Value* file : {&baseline, &candidate}) {
    const std::string schema = file->member_or("schema", "");
    if (schema != "elastisim-bench-perf-v1") {
      std::fprintf(stderr, "error: unexpected schema \"%s\" (want elastisim-bench-perf-v1)\n",
                   schema.c_str());
      return 2;
    }
  }
  warn_on_build_mismatch(baseline, candidate);

  const json::Value* base_cells = baseline.find("cells");
  if (!base_cells || !base_cells->is_array() || base_cells->as_array().empty()) {
    std::fprintf(stderr, "error: baseline has no cells\n");
    return 2;
  }

  std::printf("%-16s %6s %12s %12s %10s %10s %10s\n", "scheduler", "jobs", "base ev/s",
              "cand ev/s", "ev/s", "s/10k", "rss");
  bool regressed = false;
  std::size_t matched = 0;
  std::size_t removed = 0;
  std::size_t added = 0;
  std::size_t mixed_mode_cells = 0;
  json::Array delta_cells;
  for (const json::Value& base_cell : base_cells->as_array()) {
    CellKey key{base_cell.member_or("jobs", std::int64_t{0}),
                base_cell.member_or("scheduler", std::string())};
    const json::Value* cand_cell = find_cell(candidate, key);
    if (!cand_cell) {
      // Present only in the baseline: report it explicitly instead of
      // silently shrinking the comparison (it does not gate the verdict).
      ++removed;
      std::printf("%-16s %6lld %12.0f %12s %10s  removed (baseline only)\n",
                  key.scheduler.c_str(), static_cast<long long>(key.jobs),
                  base_cell.member_or("events_per_second", 0.0), "-", "-");
      json::Object entry;
      entry["scheduler"] = key.scheduler;
      entry["jobs"] = key.jobs;
      entry["status"] = "removed";
      entry["baseline_events_per_second"] = base_cell.member_or("events_per_second", 0.0);
      delta_cells.emplace_back(std::move(entry));
      continue;
    }
    ++matched;
    // Satellite: a --quick cell against a full-grid cell shares the key but
    // not the workload shape; flag it rather than let the delta mislead.
    const std::string base_mode = cell_mode(base_cell, baseline);
    const std::string cand_mode = cell_mode(*cand_cell, candidate);
    const bool mixed_mode = base_mode != cand_mode;
    if (mixed_mode) {
      ++mixed_mode_cells;
      std::fprintf(stderr,
                   "warning: (%lld, %s) compares %s-mode baseline against %s-mode "
                   "candidate — not like-for-like\n",
                   static_cast<long long>(key.jobs), key.scheduler.c_str(),
                   base_mode.c_str(), cand_mode.c_str());
    }
    const double base_eps = base_cell.member_or("events_per_second", 0.0);
    const double cand_eps = cand_cell->member_or("events_per_second", 0.0);
    std::printf("%-16s %6lld %12.0f %12.0f %10s %10s %10s\n", key.scheduler.c_str(),
                static_cast<long long>(key.jobs), base_eps, cand_eps,
                delta_percent(base_eps, cand_eps).c_str(),
                delta_percent(base_cell.member_or("wall_s_per_10k_jobs", 0.0),
                              cand_cell->member_or("wall_s_per_10k_jobs", 0.0))
                    .c_str(),
                delta_percent(base_cell.member_or("peak_rss_bytes", 0.0),
                              cand_cell->member_or("peak_rss_bytes", 0.0))
                    .c_str());
    const bool cell_regressed =
        base_eps > 0.0 && cand_eps < base_eps * (1.0 - threshold);
    if (cell_regressed) {
      std::fprintf(stderr, "regression: (%lld, %s) events/sec %.0f -> %.0f (> %.0f%% slower)\n",
                   static_cast<long long>(key.jobs), key.scheduler.c_str(), base_eps,
                   cand_eps, 100.0 * threshold);
      regressed = true;
    }
    json::Object entry;
    entry["scheduler"] = key.scheduler;
    entry["jobs"] = key.jobs;
    entry["status"] = "matched";
    entry["mixed_mode"] = mixed_mode;
    json::Object metrics;
    for (const char* metric :
         {"events_per_second", "wall_s_per_10k_jobs", "peak_rss_bytes"}) {
      const double base_value = base_cell.member_or(metric, 0.0);
      const double cand_value = cand_cell->member_or(metric, 0.0);
      json::Object pair;
      pair["baseline"] = base_value;
      pair["candidate"] = cand_value;
      pair["ratio"] = std::fabs(base_value) > 1e-12 ? cand_value / base_value : 0.0;
      metrics[metric] = json::Value(std::move(pair));
    }
    entry["metrics"] = json::Value(std::move(metrics));
    entry["regressed"] = cell_regressed;
    delta_cells.emplace_back(std::move(entry));
  }
  // Cells only the candidate has (a new benchmark size or scheduler): listed
  // explicitly so a grown trajectory is visible in the diff, not just a count.
  if (const json::Value* cand_cells = candidate.find("cells");
      cand_cells != nullptr && cand_cells->is_array()) {
    for (const json::Value& cand_cell : cand_cells->as_array()) {
      CellKey key{cand_cell.member_or("jobs", std::int64_t{0}),
                  cand_cell.member_or("scheduler", std::string())};
      if (find_cell(baseline, key) != nullptr) continue;
      ++added;
      std::printf("%-16s %6lld %12s %12.0f %10s  added (candidate only)\n",
                  key.scheduler.c_str(), static_cast<long long>(key.jobs), "-",
                  cand_cell.member_or("events_per_second", 0.0), "-");
      json::Object entry;
      entry["scheduler"] = key.scheduler;
      entry["jobs"] = key.jobs;
      entry["status"] = "added";
      entry["candidate_events_per_second"] = cand_cell.member_or("events_per_second", 0.0);
      delta_cells.emplace_back(std::move(entry));
    }
  }
  if (removed > 0 || added > 0) {
    std::printf("coverage: %zu matched, %zu removed, %zu added\n", matched, removed, added);
  }
  if (matched == 0) {
    std::fprintf(stderr, "error: no cells matched between the two files\n");
    return 2;
  }
  if (!json_path.empty()) {
    json::Object out;
    out["schema"] = "elastisim-perf-compare-v1";
    out["threshold"] = threshold;
    out["matched_cells"] = matched;
    out["removed_cells"] = removed;
    out["added_cells"] = added;
    out["mixed_mode_cells"] = mixed_mode_cells;
    out["regressed"] = regressed;
    out["cells"] = json::Value(std::move(delta_cells));
    try {
      json::write_file(json_path, json::Value(std::move(out)));
      std::printf("wrote %s\n", json_path.c_str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 2;
    }
  }
  if (regressed) {
    std::fprintf(stderr, "FAIL: events/sec regressed beyond %.0f%% tolerance\n",
                 100.0 * threshold);
    return 1;
  }
  std::printf("OK: %zu cells within %.0f%% events/sec tolerance\n", matched,
              100.0 * threshold);
  return 0;
}
