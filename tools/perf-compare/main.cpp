// perf-compare — diff two BENCH_perf.json performance trajectories.
//
//   perf-compare <baseline.json> <candidate.json> [--threshold 0.30]
//                [--json <deltas.json>]
//
// Matches cells by (jobs, scheduler), prints per-cell percentage deltas for
// events/sec, wall seconds per 10k jobs, and peak RSS, and exits non-zero if
// any matched cell's events/sec regressed by more than the threshold
// (default 30%, the tolerance the CI perf-smoke job enforces; see
// docs/OBSERVABILITY.md for why it is this loose). Mismatched build
// provenance (compiler, flags, build type) only warns: the numbers are still
// printed, but the regression verdict is unreliable across builds.
//
// --json writes the same comparison machine-readably (schema
// "elastisim-perf-compare-v1": per-cell baseline/candidate values and
// ratios plus the verdict) so CI can archive deltas alongside artifacts.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "json/json.h"
#include "util/flags.h"

using namespace elastisim;

namespace {

struct CellKey {
  std::int64_t jobs = 0;
  std::string scheduler;
};

bool same_key(const CellKey& a, const CellKey& b) {
  return a.jobs == b.jobs && a.scheduler == b.scheduler;
}

const json::Value* find_cell(const json::Value& file, const CellKey& key) {
  const json::Value* cells = file.find("cells");
  if (!cells || !cells->is_array()) return nullptr;
  for (const json::Value& cell : cells->as_array()) {
    CellKey candidate{cell.member_or("jobs", std::int64_t{0}),
                      cell.member_or("scheduler", std::string())};
    if (same_key(candidate, key)) return &cell;
  }
  return nullptr;
}

/// "+12.3%" / "-4.5%" / "n/a" when the baseline value is ~zero.
std::string delta_percent(double baseline, double candidate) {
  if (std::fabs(baseline) < 1e-12) return "n/a";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%+.1f%%", 100.0 * (candidate - baseline) / baseline);
  return buffer;
}

/// Warns about any build-provenance field that differs (satellite: comparing
/// trajectories from different compilers/flags is apples to oranges).
void warn_on_build_mismatch(const json::Value& baseline, const json::Value& candidate) {
  const json::Value* base_build = baseline.find("build");
  const json::Value* cand_build = candidate.find("build");
  if (!base_build || !cand_build) return;
  for (const char* key : {"compiler", "build_type", "flags", "assertions",
                          "sanitizers", "profiler_compiled"}) {
    const json::Value* a = base_build->find(key);
    const json::Value* b = cand_build->find(key);
    const std::string lhs = a ? json::dump(*a) : "(missing)";
    const std::string rhs = b ? json::dump(*b) : "(missing)";
    if (lhs != rhs) {
      std::fprintf(stderr,
                   "warning: build mismatch on \"%s\": baseline %s vs candidate %s "
                   "(deltas below are not comparable)\n",
                   key, lhs.c_str(), rhs.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto& positional = flags.positional();
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: %s <baseline BENCH_perf.json> <candidate BENCH_perf.json> "
                 "[--threshold 0.30] [--json <deltas.json>]\n",
                 flags.program().c_str());
    return 2;
  }
  const double threshold = flags.get("threshold", 0.30);
  const std::string json_path = flags.get("json", std::string());
  if (flags.has("json") && (json_path.empty() || json_path == "true")) {
    std::fprintf(stderr, "error: --json requires a file path\n");
    return 2;
  }

  json::Value baseline;
  json::Value candidate;
  try {
    baseline = json::parse_file(positional[0]);
    candidate = json::parse_file(positional[1]);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  for (const json::Value* file : {&baseline, &candidate}) {
    const std::string schema = file->member_or("schema", "");
    if (schema != "elastisim-bench-perf-v1") {
      std::fprintf(stderr, "error: unexpected schema \"%s\" (want elastisim-bench-perf-v1)\n",
                   schema.c_str());
      return 2;
    }
  }
  warn_on_build_mismatch(baseline, candidate);

  const json::Value* base_cells = baseline.find("cells");
  if (!base_cells || !base_cells->is_array() || base_cells->as_array().empty()) {
    std::fprintf(stderr, "error: baseline has no cells\n");
    return 2;
  }

  std::printf("%-16s %6s %12s %12s %10s %10s %10s\n", "scheduler", "jobs", "base ev/s",
              "cand ev/s", "ev/s", "s/10k", "rss");
  bool regressed = false;
  std::size_t matched = 0;
  std::size_t removed = 0;
  std::size_t added = 0;
  json::Array delta_cells;
  for (const json::Value& base_cell : base_cells->as_array()) {
    CellKey key{base_cell.member_or("jobs", std::int64_t{0}),
                base_cell.member_or("scheduler", std::string())};
    const json::Value* cand_cell = find_cell(candidate, key);
    if (!cand_cell) {
      // Present only in the baseline: report it explicitly instead of
      // silently shrinking the comparison (it does not gate the verdict).
      ++removed;
      std::printf("%-16s %6lld %12.0f %12s %10s  removed (baseline only)\n",
                  key.scheduler.c_str(), static_cast<long long>(key.jobs),
                  base_cell.member_or("events_per_second", 0.0), "-", "-");
      json::Object entry;
      entry["scheduler"] = key.scheduler;
      entry["jobs"] = key.jobs;
      entry["status"] = "removed";
      entry["baseline_events_per_second"] = base_cell.member_or("events_per_second", 0.0);
      delta_cells.emplace_back(std::move(entry));
      continue;
    }
    ++matched;
    const double base_eps = base_cell.member_or("events_per_second", 0.0);
    const double cand_eps = cand_cell->member_or("events_per_second", 0.0);
    std::printf("%-16s %6lld %12.0f %12.0f %10s %10s %10s\n", key.scheduler.c_str(),
                static_cast<long long>(key.jobs), base_eps, cand_eps,
                delta_percent(base_eps, cand_eps).c_str(),
                delta_percent(base_cell.member_or("wall_s_per_10k_jobs", 0.0),
                              cand_cell->member_or("wall_s_per_10k_jobs", 0.0))
                    .c_str(),
                delta_percent(base_cell.member_or("peak_rss_bytes", 0.0),
                              cand_cell->member_or("peak_rss_bytes", 0.0))
                    .c_str());
    const bool cell_regressed =
        base_eps > 0.0 && cand_eps < base_eps * (1.0 - threshold);
    if (cell_regressed) {
      std::fprintf(stderr, "regression: (%lld, %s) events/sec %.0f -> %.0f (> %.0f%% slower)\n",
                   static_cast<long long>(key.jobs), key.scheduler.c_str(), base_eps,
                   cand_eps, 100.0 * threshold);
      regressed = true;
    }
    json::Object entry;
    entry["scheduler"] = key.scheduler;
    entry["jobs"] = key.jobs;
    entry["status"] = "matched";
    json::Object metrics;
    for (const char* metric :
         {"events_per_second", "wall_s_per_10k_jobs", "peak_rss_bytes"}) {
      const double base_value = base_cell.member_or(metric, 0.0);
      const double cand_value = cand_cell->member_or(metric, 0.0);
      json::Object pair;
      pair["baseline"] = base_value;
      pair["candidate"] = cand_value;
      pair["ratio"] = std::fabs(base_value) > 1e-12 ? cand_value / base_value : 0.0;
      metrics[metric] = json::Value(std::move(pair));
    }
    entry["metrics"] = json::Value(std::move(metrics));
    entry["regressed"] = cell_regressed;
    delta_cells.emplace_back(std::move(entry));
  }
  // Cells only the candidate has (a new benchmark size or scheduler): listed
  // explicitly so a grown trajectory is visible in the diff, not just a count.
  if (const json::Value* cand_cells = candidate.find("cells");
      cand_cells != nullptr && cand_cells->is_array()) {
    for (const json::Value& cand_cell : cand_cells->as_array()) {
      CellKey key{cand_cell.member_or("jobs", std::int64_t{0}),
                  cand_cell.member_or("scheduler", std::string())};
      if (find_cell(baseline, key) != nullptr) continue;
      ++added;
      std::printf("%-16s %6lld %12s %12.0f %10s  added (candidate only)\n",
                  key.scheduler.c_str(), static_cast<long long>(key.jobs), "-",
                  cand_cell.member_or("events_per_second", 0.0), "-");
      json::Object entry;
      entry["scheduler"] = key.scheduler;
      entry["jobs"] = key.jobs;
      entry["status"] = "added";
      entry["candidate_events_per_second"] = cand_cell.member_or("events_per_second", 0.0);
      delta_cells.emplace_back(std::move(entry));
    }
  }
  if (removed > 0 || added > 0) {
    std::printf("coverage: %zu matched, %zu removed, %zu added\n", matched, removed, added);
  }
  if (matched == 0) {
    std::fprintf(stderr, "error: no cells matched between the two files\n");
    return 2;
  }
  if (!json_path.empty()) {
    json::Object out;
    out["schema"] = "elastisim-perf-compare-v1";
    out["threshold"] = threshold;
    out["matched_cells"] = matched;
    out["removed_cells"] = removed;
    out["added_cells"] = added;
    out["regressed"] = regressed;
    out["cells"] = json::Value(std::move(delta_cells));
    try {
      json::write_file(json_path, json::Value(std::move(out)));
      std::printf("wrote %s\n", json_path.c_str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 2;
    }
  }
  if (regressed) {
    std::fprintf(stderr, "FAIL: events/sec regressed beyond %.0f%% tolerance\n",
                 100.0 * threshold);
    return 1;
  }
  std::printf("OK: %zu cells within %.0f%% events/sec tolerance\n", matched,
              100.0 * threshold);
  return 0;
}
