// Lexical function-definition extraction and the function-level index pass:
// `// elsim-hot` annotations, their plain callees (one-level hot
// propagation), and signal-handler registrations.
#include <cctype>

#include "elsim-lint/internal.h"

namespace elsimlint {

namespace detail {

namespace {

/// Keywords that look like `name(` but never open a function definition.
bool is_control_keyword(const std::string& word) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",      "while",    "switch",   "catch",         "return",
      "sizeof", "alignof",  "decltype", "noexcept", "static_assert", "assert",
      "new",    "delete",   "throw",    "operator", "defined",       "alignas",
  };
  return kKeywords.count(word) != 0;
}

/// Consumes a balanced bracket group starting at `pos` if one opens there;
/// returns the index just past it, or `pos` unchanged.
std::size_t skip_group(const std::string& code, std::size_t pos, char open_c,
                       char close_c) {
  if (pos >= code.size() || code[pos] != open_c) return pos;
  const std::size_t close = match_forward(code, pos, open_c, close_c);
  return close == std::string::npos ? code.size() : close + 1;
}

/// From just after the parameter-list ')', finds the body '{' of a function
/// definition, skipping cv/ref qualifiers, noexcept(...), trailing return
/// types, and a constructor-initializer list. npos when this is a
/// declaration, a call, or anything else.
std::size_t find_body_brace(const std::string& code, std::size_t pos) {
  std::size_t i = skip_space(code, pos);
  while (i < code.size()) {
    const char c = code[i];
    if (c == '{') return i;
    if (c == ';' || c == '=' || c == ',' || c == ')' || c == ']' || c == '#') {
      return std::string::npos;
    }
    if (c == '&') {  // ref-qualified member (&, &&)
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
      // Trailing return type: scan to the body brace or a terminator,
      // consuming balanced parens (decltype(...)).
      i += 2;
      while (i < code.size() && code[i] != '{' && code[i] != ';' && code[i] != '=') {
        if (code[i] == '(') {
          i = skip_group(code, i, '(', ')');
        } else {
          ++i;
        }
      }
      continue;
    }
    if (c == ':' && (i + 1 >= code.size() || code[i + 1] != ':')) {
      // Constructor-initializer list: `name(args)` or `name{args}` entries
      // separated by commas, then the body brace.
      i = skip_space(code, i + 1);
      while (i < code.size()) {
        // Entry name, possibly qualified/templated (Base<T>::Base).
        while (i < code.size() &&
               (is_ident(code[i]) || code[i] == ':' || code[i] == '<' ||
                code[i] == '>' || code[i] == ' ' || code[i] == '\n')) {
          if (code[i] == '<') {
            i = skip_group(code, i, '<', '>');
          } else {
            ++i;
          }
        }
        if (i >= code.size()) return std::string::npos;
        if (code[i] == '(') {
          i = skip_space(code, skip_group(code, i, '(', ')'));
        } else if (code[i] == '{') {
          // `member{...}` — unless this is already the body (preceded by
          // ',' handling below, a bare '{' right after an entry separator
          // is ambiguous; entries always carry an initializer group, so a
          // '{' reached here after consuming a name is that group).
          i = skip_space(code, skip_group(code, i, '{', '}'));
        } else {
          return std::string::npos;
        }
        if (i < code.size() && code[i] == ',') {
          i = skip_space(code, i + 1);
          continue;
        }
        if (i < code.size() && code[i] == '{') return i;
        return std::string::npos;
      }
      return std::string::npos;
    }
    if (is_ident_start(c)) {
      const std::string word = read_ident(code, i);
      if (word == "const" || word == "override" || word == "final" ||
          word == "mutable" || word == "volatile") {
        i += word.size();
        continue;
      }
      if (word == "noexcept") {
        i = skip_space(code, i + word.size());
        i = skip_group(code, i, '(', ')');
        continue;
      }
      return std::string::npos;  // a type token: declaration like `int f(), g;`
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    return std::string::npos;
  }
  return std::string::npos;
}

}  // namespace

std::vector<FunctionDef> find_functions(const SourceFile& file) {
  const std::string& code = file.code;
  std::vector<FunctionDef> out;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] != '(') continue;
    // The identifier (possibly Qual::name) directly before the '('.
    std::size_t end = i;
    while (end > 0 && std::isspace(static_cast<unsigned char>(code[end - 1]))) --end;
    if (end == 0 || !is_ident(code[end - 1])) continue;
    std::size_t begin = end;
    while (begin > 0 && is_ident(code[begin - 1])) --begin;
    if (!is_ident_start(code[begin])) continue;
    if (begin > 0 && code[begin - 1] == '~') continue;  // destructor
    const std::string name = code.substr(begin, end - begin);
    if (is_control_keyword(name)) continue;
    // Walk the qualification chain backwards (EventQueue::pop).
    std::size_t qual_begin = begin;
    while (qual_begin >= 2 && code[qual_begin - 1] == ':' && code[qual_begin - 2] == ':') {
      std::size_t prev_end = qual_begin - 2;
      std::size_t prev_begin = prev_end;
      while (prev_begin > 0 && is_ident(code[prev_begin - 1])) --prev_begin;
      if (prev_begin == prev_end) break;
      qual_begin = prev_begin;
    }
    const std::size_t close = match_forward(code, i, '(', ')');
    if (close == std::string::npos) continue;
    const std::size_t body = find_body_brace(code, close + 1);
    if (body == std::string::npos) continue;
    const std::size_t body_end = match_forward(code, body, '{', '}');
    if (body_end == std::string::npos) continue;
    FunctionDef fn;
    fn.name = name;
    fn.qualified = code.substr(qual_begin, end - qual_begin);
    fn.name_pos = begin;
    fn.body_begin = body;
    fn.body_end = body_end;
    out.push_back(std::move(fn));
  }
  return out;
}

bool has_hot_annotation(const SourceFile& file, const FunctionDef& fn,
                        const LineMap& lines) {
  // Only the signature line and the line directly above count: a wider
  // window would let an annotation bleed onto an adjacent function.
  const std::size_t sig_line = lines.line_of(fn.name_pos);
  for (std::size_t line = sig_line >= 1 ? sig_line - 1 : 1; line <= sig_line; ++line) {
    if (line < 1 || line > file.comments.size()) continue;
    if (file.comments[line - 1].find("elsim-hot") != std::string::npos) return true;
  }
  return false;
}

std::set<std::string> plain_callees(const std::string& code, const FunctionDef& fn) {
  std::set<std::string> out;
  for (std::size_t i = fn.body_begin + 1; i < fn.body_end && i < code.size(); ++i) {
    if (code[i] != '(') continue;
    std::size_t end = i;
    while (end > fn.body_begin &&
           std::isspace(static_cast<unsigned char>(code[end - 1]))) {
      --end;
    }
    if (end == fn.body_begin || !is_ident(code[end - 1])) continue;
    std::size_t begin = end;
    while (begin > fn.body_begin && is_ident(code[begin - 1])) --begin;
    if (!is_ident_start(code[begin])) continue;
    const std::string name = code.substr(begin, end - begin);
    if (is_control_keyword(name)) continue;
    // Member calls on other objects (`obj.f(`, `p->f(`) and qualified calls
    // (`ns::f(`) stay the callee's responsibility — annotate those functions
    // directly. Only plain calls propagate hotness.
    const char before = begin > 0 ? code[begin - 1] : '\0';
    if (before == '.' || before == ':' || before == '~') continue;
    if (before == '>' && begin >= 2 && code[begin - 2] == '-') continue;
    out.insert(name);
  }
  return out;
}

bool is_hot(const SymbolIndex& index, const FunctionDef& fn) {
  return index.hot_functions.count(fn.qualified) != 0 ||
         index.hot_functions.count(fn.name) != 0;
}

}  // namespace detail

void index_functions(const SourceFile& file, SymbolIndex& index) {
  const detail::LineMap lines(file.code);
  for (const detail::FunctionDef& fn : detail::find_functions(file)) {
    if (!detail::has_hot_annotation(file, fn, lines)) continue;
    index.hot_annotated.insert(fn.qualified);
    std::set<std::string>& callees = index.hot_callees[fn.qualified];
    for (const std::string& callee : detail::plain_callees(file.code, fn)) {
      callees.insert(callee);
    }
  }

  // Signal-handler registrations: std::signal(SIG..., handler) and
  // sigaction-style `sa.sa_handler = handler` / `sa_sigaction = handler`.
  const std::string& code = file.code;
  std::size_t pos = 0;
  while ((pos = code.find("signal", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 6;
    if (!detail::word_at(code, at, "signal")) continue;
    std::size_t open = detail::skip_space(code, at + 6);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = detail::match_forward(code, open, '(', ')');
    if (close == std::string::npos) continue;
    // Second top-level argument.
    int depth = 0;
    std::size_t comma = std::string::npos;
    for (std::size_t i = open + 1; i < close; ++i) {
      const char c = code[i];
      if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
      if (c == ',' && depth == 0) {
        comma = i;
        break;
      }
    }
    if (comma == std::string::npos) continue;
    std::size_t i = detail::skip_space(code, comma + 1);
    if (i < code.size() && code[i] == '&') i = detail::skip_space(code, i + 1);
    // Strip any qualification (cli::handler → handler).
    std::string name = detail::read_ident(code, i);
    while (!name.empty() && code.compare(i + name.size(), 2, "::") == 0) {
      i += name.size() + 2;
      name = detail::read_ident(code, i);
    }
    if (name.empty() || name == "SIG_DFL" || name == "SIG_IGN" || name == "nullptr") {
      continue;
    }
    index.signal_handlers.insert(name);
  }
  for (const std::string& field : {std::string("sa_handler"), std::string("sa_sigaction")}) {
    pos = 0;
    while ((pos = code.find(field, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += field.size();
      if (!detail::word_at(code, at, field)) continue;
      std::size_t i = detail::skip_space(code, at + field.size());
      if (i >= code.size() || code[i] != '=') continue;
      i = detail::skip_space(code, i + 1);
      if (i < code.size() && code[i] == '&') i = detail::skip_space(code, i + 1);
      const std::string name = detail::read_ident(code, i);
      if (!name.empty() && name != "SIG_DFL" && name != "SIG_IGN" && name != "nullptr") {
        index.signal_handlers.insert(name);
      }
    }
  }
}

void finalize_index(SymbolIndex& index) {
  index.hot_functions.clear();
  for (const std::string& fn : index.hot_annotated) {
    index.hot_functions.insert(fn);
  }
  for (const auto& [fn, callees] : index.hot_callees) {
    if (index.hot_annotated.count(fn) == 0) continue;
    for (const std::string& callee : callees) {
      index.hot_functions.insert(callee);
    }
  }
}

}  // namespace elsimlint
