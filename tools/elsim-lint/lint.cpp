#include "elsim-lint/lint.h"

#include <algorithm>
#include <cctype>

#include "elsim-lint/internal.h"
#include "json/json.h"

namespace elsimlint {

namespace json = elastisim::json;

namespace detail {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool word_at(const std::string& code, std::size_t pos, const std::string& word) {
  if (code.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && is_ident(code[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= code.size() || !is_ident(code[end]);
}

std::size_t skip_space(const std::string& code, std::size_t pos) {
  while (pos < code.size() && std::isspace(static_cast<unsigned char>(code[pos]))) ++pos;
  return pos;
}

std::string read_ident(const std::string& code, std::size_t pos) {
  if (pos >= code.size() || !is_ident_start(code[pos])) return "";
  std::size_t end = pos;
  while (end < code.size() && is_ident(code[end])) ++end;
  return code.substr(pos, end - pos);
}

std::size_t match_forward(const std::string& code, std::size_t open, char open_c,
                          char close_c) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == open_c) ++depth;
    if (code[i] == close_c && --depth == 0) return i;
  }
  return std::string::npos;
}

std::size_t enclosing_block_end(const std::string& code, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < code.size(); ++i) {
    if (code[i] == '{') ++depth;
    if (code[i] == '}' && --depth < 0) return i;
  }
  return code.size();
}

LineMap::LineMap(const std::string& code) {
  starts_.push_back(0);
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '\n') starts_.push_back(i + 1);
  }
}

std::size_t LineMap::line_of(std::size_t pos) const {
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), pos);
  return static_cast<std::size_t>(it - starts_.begin());
}

void add_finding(Context& ctx, std::size_t pos, const std::string& rule,
                 std::string message) {
  Finding finding;
  finding.file = ctx.file.path;
  finding.line = ctx.lines.line_of(pos);
  finding.rule = rule;
  finding.message = std::move(message);
  if (finding.line >= 1 && finding.line <= ctx.file.lines.size()) {
    finding.snippet = trim(ctx.file.lines[finding.line - 1]);
  }
  ctx.findings.push_back(std::move(finding));
}

}  // namespace detail

using namespace detail;  // NOLINT: the rule engines live on these helpers

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"unordered-iteration", "determinism", "error",
       "iteration over a std::unordered_{map,set} (hash order is not deterministic "
       "across implementations; sort or use an ordered container before output)"},
      {"raw-random", "determinism", "error",
       "entropy source outside util::Rng (rand, std::random_device, mt19937, "
       "time(nullptr), system_clock; breaks seeded reproducibility)"},
      {"pointer-order", "determinism", "error",
       "ordering or hashing by pointer value (allocation addresses differ between "
       "runs; key by a stable id instead)"},
      {"float-equality", "determinism", "error",
       "== or != on floating-point values (round-off makes exact equality "
       "run-to-run fragile; compare with a tolerance or suppress if exactness is "
       "intended)"},
      {"enum-switch", "determinism", "error",
       "switch over a project enum missing enumerators and without a default "
       "(a newly added value would fall through silently)"},
      {"mutable-static", "concurrency", "error",
       "mutable static or namespace-scope state (sweep workers share library "
       "code; make it const, thread_local, std::atomic, or suppress with a "
       "rationale)"},
      {"raw-memory-order", "concurrency", "error",
       "explicit std::memory_order argument outside sim/cancellation.* and "
       "core/sweep_runner.* (relaxed orderings are audited there only; use the "
       "seq_cst default elsewhere)"},
      {"lock-order", "concurrency", "error",
       "nested lock_guard/unique_lock on distinct mutexes (a second site locking "
       "in the opposite order deadlocks; take both with one std::scoped_lock)"},
      {"signal-unsafe", "concurrency", "error",
       "non-async-signal-safe call (allocation, stdio, std::string construction) "
       "inside a function registered as a signal handler"},
      {"hot-alloc", "hot-path", "error",
       "heap allocation (new, make_unique/shared, container or string "
       "construction, std::function, string concatenation) inside an elsim-hot "
       "region"},
      {"hot-container-growth", "hot-path", "error",
       "push_back/emplace_back in an elsim-hot region without a visible reserve "
       "on the same container in the same function"},
      {"hot-virtual-loop", "hot-path", "error",
       "virtual dispatch inside a loop in an elsim-hot region (an indirect "
       "branch per iteration; hoist the call or devirtualize)"},
  };
  return kRules;
}

const RuleInfo* find_rule(const std::string& name) {
  for (const RuleInfo& info : rules()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

const std::string& rule_family(const std::string& rule) {
  static const std::string kUnknown = "unknown";
  const RuleInfo* info = find_rule(rule);
  return info != nullptr ? info->family : kUnknown;
}

SourceFile preprocess(std::string path, const std::string& text) {
  SourceFile file;
  file.path = std::move(path);

  // Split raw lines for snippets.
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      file.lines.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  file.comments.assign(file.lines.size(), "");

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for raw strings: the ")delim" terminator
  std::size_t line = 0;
  file.code.reserve(text.size());

  auto emit_blank = [&file](char c) { file.code.push_back(c == '\n' ? '\n' : ' '); };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          emit_blank(c);
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          emit_blank(c);
          emit_blank(next);
          ++i;
        } else if (c == '"') {
          // Raw string? The opening quote is preceded by R (possibly u8R,
          // uR, LR); scan the delimiter up to '('.
          if (i > 0 && text[i - 1] == 'R' && (i < 2 || !is_ident(text[i - 2]) ||
                                              text[i - 2] == '8' || text[i - 2] == 'u' ||
                                              text[i - 2] == 'L')) {
            std::size_t paren = i + 1;
            while (paren < text.size() && text[paren] != '(') ++paren;
            raw_delim = ")" + text.substr(i + 1, paren - i - 1) + "\"";
            state = State::kRawString;
          } else {
            state = State::kString;
          }
          // Keep the delimiter so rules can recognise literal operands.
          file.code.push_back('"');
        } else if (c == '\'') {
          state = State::kChar;
          file.code.push_back('\'');
        } else {
          file.code.push_back(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          file.code.push_back('\n');
        } else {
          file.comments[line].push_back(c);
          emit_blank(c);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          emit_blank(c);
          emit_blank(next);
          ++i;
        } else {
          if (c != '\n') file.comments[line].push_back(c);
          emit_blank(c);
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          emit_blank(c);
          emit_blank(next);
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          file.code.push_back('"');
        } else {
          if (c == '\n') state = State::kCode;  // unterminated: recover
          emit_blank(c);
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          emit_blank(c);
          emit_blank(next);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          file.code.push_back('\'');
        } else {
          if (c == '\n') state = State::kCode;
          emit_blank(c);
        }
        break;
      case State::kRawString:
        if (c == ')' && text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k + 1 < raw_delim.size(); ++k) emit_blank(text[i + k]);
          file.code.push_back('"');
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          emit_blank(c);
        }
        break;
    }
    if (c == '\n') ++line;
  }
  return file;
}

namespace {

/// Walks backwards from `pos` (exclusive) over whitespace, then over one
/// balanced ()-group if present, and returns the identifier that precedes —
/// the "tail name" of the left operand of a comparison. Empty if none.
std::string left_operand_name(const std::string& code, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 && std::isspace(static_cast<unsigned char>(code[i - 1]))) --i;
  // A ')' before the operator means the operand is a call or a parenthesized
  // expression — its type is unknowable lexically, so claim nothing.
  if (i > 0 && code[i - 1] == ')') return "";
  std::size_t end = i;
  while (i > 0 && is_ident(code[i - 1])) --i;
  if (i == end) return "";
  return code.substr(i, end - i);
}

/// True when the token starting at `pos` is a floating-point literal
/// (contains a decimal point, a decimal exponent, or an f/F suffix).
bool is_float_literal(const std::string& code, std::size_t pos) {
  std::size_t i = pos;
  if (i < code.size() && (code[i] == '-' || code[i] == '+')) ++i;
  if (i >= code.size()) return false;
  if (std::isdigit(static_cast<unsigned char>(code[i])) == 0 && code[i] != '.') return false;
  if (code.compare(i, 2, "0x") == 0 || code.compare(i, 2, "0X") == 0) return false;
  bool has_dot = false;
  bool has_exp = false;
  bool has_suffix = false;
  while (i < code.size()) {
    const char c = code[i];
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '\'') {
      ++i;
    } else if (c == '.') {
      has_dot = true;
      ++i;
    } else if (c == 'e' || c == 'E') {
      has_exp = true;
      ++i;
      if (i < code.size() && (code[i] == '-' || code[i] == '+')) ++i;
    } else if (c == 'f' || c == 'F') {
      has_suffix = true;
      ++i;
      break;
    } else {
      break;
    }
  }
  return has_dot || has_exp || has_suffix;
}

/// Reads the member chain starting at `pos` (`a.b->c(...).d`) and returns
/// its final member name — the "tail name" of the right operand. When
/// `is_call` is given, it is set to true iff the chain ends in a call
/// (`...end()`), whose result type a lexical scan cannot know.
std::string right_operand_name(const std::string& code, std::size_t pos,
                               bool* is_call = nullptr) {
  std::size_t i = skip_space(code, pos);
  if (i < code.size() && (code[i] == '!' || code[i] == '-' || code[i] == '+' ||
                          code[i] == '*' || code[i] == '&')) {
    i = skip_space(code, i + 1);
  }
  std::string name = read_ident(code, i);
  bool call = false;
  if (name.empty()) return "";
  i += name.size();
  while (i < code.size()) {
    if (code.compare(i, 2, "::") == 0) {
      i += 2;
    } else if (code[i] == '.') {
      i += 1;
    } else if (code.compare(i, 2, "->") == 0) {
      i += 2;
    } else if (code[i] == '(') {
      const std::size_t close = match_forward(code, i, '(', ')');
      if (close == std::string::npos) break;
      i = close + 1;
      call = true;
      continue;  // allow `.x()` followed by `.y`
    } else {
      break;
    }
    const std::string next = read_ident(code, i);
    if (next.empty()) break;
    name = next;
    call = false;
    i += next.size();
  }
  if (is_call != nullptr) *is_call = call;
  return name;
}

/// First template argument of the bracket group opening at `open` ('<').
std::string first_template_arg(const std::string& code, std::size_t open) {
  int depth = 0;
  std::size_t begin = open + 1;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<' || c == '(') ++depth;
    if (c == '>' || c == ')') {
      --depth;
      if (depth == 0) return code.substr(begin, i - begin);
    }
    if (c == ',' && depth == 1) return code.substr(begin, i - begin);
    if (c == ';') break;  // not a template after all (a < b comparison)
  }
  return "";
}

}  // namespace

void index_symbols(const SourceFile& file, SymbolIndex& index) {
  const std::string& code = file.code;

  // Unordered-container declarations: `unordered_map<...> name` (and set).
  for (const std::string& container : {std::string("unordered_map"),
                                       std::string("unordered_set")}) {
    std::size_t pos = 0;
    while ((pos = code.find(container, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += container.size();
      if (!word_at(code, at, container)) continue;
      std::size_t i = skip_space(code, at + container.size());
      if (i >= code.size() || code[i] != '<') continue;
      const std::size_t close = match_forward(code, i, '<', '>');
      if (close == std::string::npos) continue;
      i = skip_space(code, close + 1);
      while (i < code.size() && (code[i] == '&' || code[i] == '*')) i = skip_space(code, i + 1);
      const std::string name = read_ident(code, i);
      if (!name.empty() && name != "const") index.unordered_vars.insert(name);
    }
  }

  // double/float/SimTime declarations (variables, members, parameters, and
  // functions returning them — a call's result is as floating as a variable).
  for (const std::string& type :
       {std::string("double"), std::string("float"), std::string("SimTime")}) {
    std::size_t pos = 0;
    while ((pos = code.find(type, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += type.size();
      if (!word_at(code, at, type)) continue;
      std::size_t i = skip_space(code, at + type.size());
      while (i < code.size() && (code[i] == '&' || code[i] == '*')) i = skip_space(code, i + 1);
      const std::string name = read_ident(code, i);
      if (!name.empty() && name != "const" && name != "operator") {
        index.double_vars.insert(name);
      }
    }
  }

  // enum class definitions.
  std::size_t pos = 0;
  while ((pos = code.find("enum", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 4;
    if (!word_at(code, at, "enum")) continue;
    std::size_t i = skip_space(code, at + 4);
    if (word_at(code, i, "class") || word_at(code, i, "struct")) {
      i = skip_space(code, i + 5 + (code[i] == 's' ? 1 : 0));
    }
    const std::string name = read_ident(code, i);
    if (name.empty()) continue;
    i = skip_space(code, i + name.size());
    if (i < code.size() && code[i] == ':') {  // underlying type
      while (i < code.size() && code[i] != '{' && code[i] != ';') ++i;
    }
    if (i >= code.size() || code[i] != '{') continue;  // forward declaration / use
    const std::size_t close = match_forward(code, i, '{', '}');
    if (close == std::string::npos) continue;
    std::set<std::string>& values = index.enums[name];
    std::size_t j = i + 1;
    while (j < close) {
      j = skip_space(code, j);
      const std::string value = read_ident(code, j);
      if (value.empty()) break;
      values.insert(value);
      j += value.size();
      // Skip an initializer (`= kOther + 1`) up to the separating comma.
      int depth = 0;
      while (j < close) {
        const char c = code[j];
        if (c == '(' || c == '{' || c == '<') ++depth;
        if (c == ')' || c == '}' || c == '>') --depth;
        if (c == ',' && depth == 0) {
          ++j;
          break;
        }
        ++j;
      }
    }
  }

  // Virtual member declarations: `virtual <type> name(...)`. Feeds
  // hot-virtual-loop; destructors and operators are not dispatch hazards a
  // loop body would name.
  pos = 0;
  while ((pos = code.find("virtual", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 7;
    if (!word_at(code, at, "virtual")) continue;
    std::size_t i = at + 7;
    while (i < code.size() && code[i] != '(' && code[i] != ';' && code[i] != '{' &&
           code[i] != '}') {
      ++i;
    }
    if (i >= code.size() || code[i] != '(') continue;
    std::size_t end = i;
    while (end > at && std::isspace(static_cast<unsigned char>(code[end - 1]))) --end;
    std::size_t begin = end;
    while (begin > at && is_ident(code[begin - 1])) --begin;
    if (begin == end) continue;
    if (begin > 0 && code[begin - 1] == '~') continue;
    const std::string name = code.substr(begin, end - begin);
    if (name != "operator") index.virtual_functions.insert(name);
  }
}

namespace {

void rule_unordered_iteration(Context& ctx) {
  const std::string& code = ctx.file.code;

  // Range-for whose range expression is a known unordered container.
  std::size_t pos = 0;
  while ((pos = code.find("for", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 3;
    if (!word_at(code, at, "for")) continue;
    const std::size_t open = skip_space(code, at + 3);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = match_forward(code, open, '(', ')');
    if (close == std::string::npos) continue;
    // The range-for ':' at top parenthesis depth (ignore "::").
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = open + 1; i < close; ++i) {
      const char c = code[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      if (c == ':' && depth == 0) {
        if ((i + 1 < close && code[i + 1] == ':') || (i > 0 && code[i - 1] == ':')) continue;
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    const std::string range = right_operand_name(code, colon + 1);
    if (ctx.index.unordered_vars.count(range) != 0) {
      add_finding(ctx, at, "unordered-iteration",
                  "range-for over unordered container '" + range +
                      "' visits elements in hash order");
    }
  }

  // `name.begin()` / `name.cbegin()` on a known unordered container.
  for (const std::string& var : ctx.index.unordered_vars) {
    pos = 0;
    while ((pos = code.find(var, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += var.size();
      if (!word_at(code, at, var)) continue;
      std::size_t i = at + var.size();
      if (code.compare(i, 1, ".") == 0) {
        i += 1;
      } else if (code.compare(i, 2, "->") == 0) {
        i += 2;
      } else {
        continue;
      }
      const std::string member = read_ident(code, i);
      if (member == "begin" || member == "cbegin") {
        add_finding(ctx, at, "unordered-iteration",
                    "'" + var + "." + member +
                        "()' exposes hash order of an unordered container");
      }
    }
  }
}

void rule_raw_random(Context& ctx) {
  const std::string& code = ctx.file.code;
  static const std::vector<std::pair<std::string, std::string>> kBanned = {
      {"rand", "use util::Rng instead of rand()"},
      {"srand", "use a util::Rng seed instead of srand()"},
      {"drand48", "use util::Rng::uniform() instead of drand48()"},
      {"random_device", "std::random_device draws non-reproducible entropy"},
      {"mt19937", "use util::Rng (seeded, split-able) instead of std::mt19937"},
      {"mt19937_64", "use util::Rng instead of std::mt19937_64"},
      {"default_random_engine", "use util::Rng instead of std::default_random_engine"},
      {"random_shuffle", "std::random_shuffle uses unspecified global entropy"},
      {"system_clock", "wall-clock time is not reproducible; simulated time comes "
                       "from sim::Engine::now()"},
  };
  for (const auto& [token, why] : kBanned) {
    std::size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += token.size();
      if (!word_at(code, at, token)) continue;
      // rand/srand/drand48 must be calls; the others are type/name uses.
      if (token == "rand" || token == "srand" || token == "drand48") {
        const std::size_t paren = skip_space(code, at + token.size());
        if (paren >= code.size() || code[paren] != '(') continue;
      }
      add_finding(ctx, at, "raw-random", why);
    }
  }
  // time(nullptr) / time(NULL) / time(0): the classic seed.
  std::size_t pos = 0;
  while ((pos = code.find("time", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 4;
    if (!word_at(code, at, "time")) continue;
    std::size_t i = skip_space(code, at + 4);
    if (i >= code.size() || code[i] != '(') continue;
    i = skip_space(code, i + 1);
    if (word_at(code, i, "nullptr") || word_at(code, i, "NULL") ||
        (code[i] == '0' && skip_space(code, i + 1) < code.size() &&
         code[skip_space(code, i + 1)] == ')')) {
      add_finding(ctx, at, "raw-random",
                  "time(nullptr) reads the wall clock; seeds must be explicit");
    }
  }
}

void rule_pointer_order(Context& ctx) {
  const std::string& code = ctx.file.code;
  static const std::vector<std::string> kContainers = {"set", "map", "unordered_set",
                                                       "unordered_map", "hash", "less",
                                                       "greater"};
  for (const std::string& container : kContainers) {
    std::size_t pos = 0;
    while ((pos = code.find(container, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += container.size();
      if (!word_at(code, at, container)) continue;
      const std::size_t open = at + container.size();
      if (open >= code.size() || code[open] != '<') continue;
      const std::string arg = trim(first_template_arg(code, open));
      if (!arg.empty() && arg.back() == '*') {
        add_finding(ctx, at, "pointer-order",
                    "std::" + container + "<" + arg +
                        "> orders/hashes by pointer value, which differs between "
                        "runs; key by a stable id");
      }
    }
  }
}

void rule_float_equality(Context& ctx) {
  const std::string& code = ctx.file.code;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    const bool eq = code[i] == '=' && code[i + 1] == '=';
    const bool ne = code[i] == '!' && code[i + 1] == '=';
    if (!eq && !ne) continue;
    if (i > 0 && (code[i - 1] == '=' || code[i - 1] == '!' || code[i - 1] == '<' ||
                  code[i - 1] == '>')) {
      continue;
    }
    if (i + 2 < code.size() && code[i + 2] == '=') {  // skip the '==' inside '!=='-ish runs
      continue;
    }
    // A string/char literal on either side means this is not a numeric
    // comparison at all.
    {
      const std::size_t r = skip_space(code, i + 2);
      if (r < code.size() && (code[r] == '"' || code[r] == '\'')) continue;
      std::size_t l = i;
      while (l > 0 && std::isspace(static_cast<unsigned char>(code[l - 1]))) --l;
      if (l > 0 && (code[l - 1] == '"' || code[l - 1] == '\'')) continue;
    }
    // `operator==` / `operator!=` declarations compare whole objects.
    const std::string before = left_operand_name(code, i);
    if (before == "operator") continue;
    bool flagged = false;
    std::string detail;
    if (ctx.index.double_vars.count(before) != 0) {
      flagged = true;
      detail = "'" + before + "' is floating-point";
    }
    const std::size_t rhs = skip_space(code, i + 2);
    if (!flagged && is_float_literal(code, rhs)) {
      flagged = true;
      detail = "right operand is a floating-point literal";
    }
    if (!flagged) {
      bool is_call = false;
      const std::string after = right_operand_name(code, i + 2, &is_call);
      if (!is_call && ctx.index.double_vars.count(after) != 0) {
        flagged = true;
        detail = "'" + after + "' is floating-point";
      }
    }
    if (!flagged) {
      // Left operand a literal: walk back over the token and re-test it.
      std::size_t end = i;
      while (end > 0 && std::isspace(static_cast<unsigned char>(code[end - 1]))) --end;
      std::size_t start = end;
      while (start > 0 && (is_ident(code[start - 1]) || code[start - 1] == '.')) --start;
      if (start < end && is_float_literal(code, start)) {
        flagged = true;
        detail = "left operand is a floating-point literal";
      }
    }
    if (flagged) {
      add_finding(ctx, i, "float-equality",
                  std::string(eq ? "==" : "!=") + " on floating-point values (" + detail +
                      "); compare with a tolerance or suppress if exactness is intended");
    }
  }
}

void rule_enum_switch(Context& ctx) {
  const std::string& code = ctx.file.code;
  std::size_t pos = 0;
  while ((pos = code.find("switch", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 6;
    if (!word_at(code, at, "switch")) continue;
    const std::size_t open = skip_space(code, at + 6);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close_paren = match_forward(code, open, '(', ')');
    if (close_paren == std::string::npos) continue;
    const std::size_t brace = skip_space(code, close_paren + 1);
    if (brace >= code.size() || code[brace] != '{') continue;
    const std::size_t close_brace = match_forward(code, brace, '{', '}');
    if (close_brace == std::string::npos) continue;

    bool has_default = false;
    std::string enum_name;
    std::set<std::string> seen;
    for (std::size_t i = brace + 1; i < close_brace; ++i) {
      if (word_at(code, i, "default")) {
        const std::size_t colon = skip_space(code, i + 7);
        if (colon < code.size() && code[colon] == ':') has_default = true;
        i += 6;
      } else if (word_at(code, i, "case")) {
        std::size_t j = skip_space(code, i + 4);
        const std::string qualifier = read_ident(code, j);
        j += qualifier.size();
        if (code.compare(j, 2, "::") == 0) {
          const std::string value = read_ident(code, j + 2);
          if (ctx.index.enums.count(qualifier) != 0) {
            enum_name = qualifier;
            seen.insert(value);
          }
        }
        i += 3;
      }
    }
    if (has_default || enum_name.empty()) continue;
    const std::set<std::string>& all = ctx.index.enums.at(enum_name);
    std::vector<std::string> missing;
    for (const std::string& value : all) {
      if (seen.count(value) == 0) missing.push_back(value);
    }
    if (missing.empty()) continue;
    std::string list;
    for (const std::string& value : missing) {
      if (!list.empty()) list += ", ";
      list += value;
    }
    add_finding(ctx, at, "enum-switch",
                "switch over " + enum_name + " has no default and misses: " + list);
  }
}

/// Parses "elsim-lint: allow(a, b)" out of a comment; returns the rule list
/// (empty when the marker is absent).
std::vector<std::string> parse_allow(const std::string& comment) {
  std::vector<std::string> allowed;
  const std::size_t marker = comment.find("elsim-lint:");
  if (marker == std::string::npos) return allowed;
  const std::size_t allow = comment.find("allow", marker);
  if (allow == std::string::npos) return allowed;
  const std::size_t open = comment.find('(', allow);
  if (open == std::string::npos) return allowed;
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return allowed;
  std::string list = comment.substr(open + 1, close - open - 1);
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string rule = trim(list.substr(start, comma - start));
    if (!rule.empty()) allowed.push_back(rule);
    start = comma + 1;
  }
  return allowed;
}

bool is_suppressed(const SourceFile& file, const Finding& finding) {
  for (std::size_t line : {finding.line, finding.line - 1}) {
    if (line < 1 || line > file.comments.size()) continue;
    for (const std::string& rule : parse_allow(file.comments[line - 1])) {
      if (rule == "all" || rule == finding.rule) return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Finding> lint_file(const SourceFile& file, const SymbolIndex& index,
                               const std::set<std::string>& enabled) {
  std::vector<Finding> findings;
  const LineMap lines(file.code);
  // Merge this file's own declarations into the shared (header) index:
  // locals in one .cpp must not colour name lookups in another.
  SymbolIndex merged = index;
  index_symbols(file, merged);
  index_functions(file, merged);
  finalize_index(merged);
  const std::vector<FunctionDef> functions = find_functions(file);
  Context ctx{file, merged, lines, functions, findings};

  const auto want = [&enabled](const char* rule) {
    return enabled.empty() || enabled.count(rule) != 0;
  };
  if (want("unordered-iteration")) rule_unordered_iteration(ctx);
  if (want("raw-random")) rule_raw_random(ctx);
  if (want("pointer-order")) rule_pointer_order(ctx);
  if (want("float-equality")) rule_float_equality(ctx);
  if (want("enum-switch")) rule_enum_switch(ctx);
  if (want("mutable-static")) rule_mutable_static(ctx);
  if (want("raw-memory-order")) rule_raw_memory_order(ctx);
  if (want("lock-order")) rule_lock_order(ctx);
  if (want("signal-unsafe")) rule_signal_unsafe(ctx);
  if (want("hot-alloc")) rule_hot_alloc(ctx);
  if (want("hot-container-growth")) rule_hot_container_growth(ctx);
  if (want("hot-virtual-loop")) rule_hot_virtual_loop(ctx);

  for (Finding& finding : findings) {
    finding.suppressed = is_suppressed(file, finding);
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return findings;
}

std::string findings_to_json(const std::vector<Finding>& findings,
                             std::size_t files_scanned) {
  struct Tally {
    std::size_t total = 0;
    std::size_t suppressed = 0;
    std::size_t baselined = 0;
    std::size_t fresh = 0;
  };
  // Family order follows the catalog; every family is always present so
  // per-family diffs against a baseline never chase missing keys.
  std::vector<std::string> family_order;
  std::map<std::string, Tally> tallies;
  for (const RuleInfo& info : rules()) {
    if (tallies.count(info.family) == 0) {
      family_order.push_back(info.family);
      tallies[info.family] = Tally{};
    }
  }

  json::Array items;
  std::size_t suppressed = 0;
  std::size_t baselined = 0;
  for (const Finding& finding : findings) {
    json::Object item;
    item["file"] = finding.file;
    item["line"] = finding.line;
    item["rule"] = finding.rule;
    item["family"] = rule_family(finding.rule);
    item["message"] = finding.message;
    item["snippet"] = finding.snippet;
    item["suppressed"] = finding.suppressed;
    item["baselined"] = finding.baselined;
    items.push_back(json::Value(std::move(item)));
    Tally& tally = tallies[rule_family(finding.rule)];
    ++tally.total;
    if (finding.suppressed) {
      ++suppressed;
      ++tally.suppressed;
    } else if (finding.baselined) {
      ++baselined;
      ++tally.baselined;
    } else {
      ++tally.fresh;
    }
  }
  json::Object families;
  for (const std::string& family : family_order) {
    const Tally& tally = tallies[family];
    json::Object entry;
    entry["findings"] = tally.total;
    entry["suppressed"] = tally.suppressed;
    entry["baselined"] = tally.baselined;
    entry["new"] = tally.fresh;
    families[family] = json::Value(std::move(entry));
  }
  json::Object out;
  out["version"] = 2;
  out["files_scanned"] = files_scanned;
  out["finding_count"] = findings.size();
  out["suppressed_count"] = suppressed;
  out["unsuppressed_count"] = findings.size() - suppressed;
  out["baselined_count"] = baselined;
  out["new_count"] = findings.size() - suppressed - baselined;
  out["families"] = json::Value(std::move(families));
  out["findings"] = json::Value(std::move(items));
  return json::dump_pretty(json::Value(std::move(out)));
}

}  // namespace elsimlint
