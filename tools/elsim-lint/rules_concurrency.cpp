// Family "concurrency": mutable static/global state, raw memory_order
// arguments outside the audited kernels, nested locks on distinct mutexes,
// and non-async-signal-safe calls inside registered signal handlers. The
// sweep orchestrator (core::SweepRunner) runs library code on a worker
// pool, so shared mutable state and ad-hoc lock nesting are correctness
// hazards, not style.
#include <cctype>

#include "elsim-lint/internal.h"

namespace elsimlint::detail {

namespace {

/// Qualifier tokens that make a static/global declaration thread-safe (or
/// at least deliberate): immutable, per-thread, atomic, or a
/// synchronisation primitive itself.
bool is_safe_qualifier(const std::string& word) {
  static const std::set<std::string> kSafe = {
      "const",         "constexpr",       "constinit",
      "thread_local",  "atomic",          "atomic_flag",
      "atomic_bool",   "atomic_int",      "mutex",
      "shared_mutex",  "recursive_mutex", "timed_mutex",
      "once_flag",     "condition_variable",
  };
  return kSafe.count(word) != 0;
}

/// Declaration-opener keywords that are never variable definitions.
bool is_type_keyword(const std::string& word) {
  static const std::set<std::string> kTypes = {
      "struct", "class",    "enum",     "union",    "using",
      "typedef", "extern",  "template", "friend",   "namespace",
      "operator", "static_assert", "return", "case", "goto", "delete",
  };
  return kTypes.count(word) != 0;
}

struct DeclVerdict {
  bool flag = false;
  std::string name;
  std::size_t name_pos = 0;
};

/// Token-walks one declaration starting at `begin` (just after `static`,
/// or at the start of a namespace-scope statement) and decides whether it
/// defines mutable state. Stops at the first top-level `;`, `=`, or `{`
/// (flag: the last identifier seen is the variable name), or at `(`
/// (function declaration/definition or direct-init — never flagged).
DeclVerdict analyze_declaration(const std::string& code, std::size_t begin,
                                std::size_t end_limit) {
  int angle = 0;
  int square = 0;
  DeclVerdict verdict;
  std::string last_ident;
  std::size_t last_pos = 0;
  std::size_t i = begin;
  while (i < end_limit && i < code.size()) {
    const char c = code[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '<') {
      ++angle;
      ++i;
      continue;
    }
    if (c == '>') {
      if (angle > 0) --angle;
      ++i;
      continue;
    }
    if (c == '[') {
      ++square;
      ++i;
      continue;
    }
    if (c == ']') {
      if (square > 0) --square;
      ++i;
      continue;
    }
    if (is_ident_start(c)) {
      const std::string word = read_ident(code, i);
      if (is_safe_qualifier(word)) return verdict;  // safe — never flagged
      if (angle == 0 && square == 0) {
        if (is_type_keyword(word)) return verdict;
        last_ident = word;
        last_pos = i;
      }
      i += word.size();
      continue;
    }
    if (angle > 0 || square > 0) {
      ++i;
      continue;
    }
    if (c == ';' || c == '=' || c == '{') {
      verdict.flag = !last_ident.empty();
      verdict.name = last_ident;
      verdict.name_pos = last_pos;
      return verdict;
    }
    if (c == '(') return verdict;  // function or direct-init: skip
    if (c == '#') return verdict;  // preprocessor debris: skip
    ++i;  // *, &, ::, commas inside declarator lists, ...
  }
  // Ran off the range without a terminator: the caller's range ends where
  // the statement does (`;`/`{` excluded), so treat it the same way.
  verdict.flag = !last_ident.empty();
  verdict.name = last_ident;
  verdict.name_pos = last_pos;
  return verdict;
}

}  // namespace

void rule_mutable_static(Context& ctx) {
  const std::string& code = ctx.file.code;
  const std::string why =
      "': sweep workers share library code; make it const, thread_local, "
      "std::atomic, or suppress with a rationale";

  // (a) `static` storage, any scope (function-local latches, class
  // members, internal-linkage globals).
  std::size_t pos = 0;
  while ((pos = code.find("static", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 6;
    if (!word_at(code, at, "static")) continue;
    const DeclVerdict verdict = analyze_declaration(code, at + 6, code.size());
    if (verdict.flag) {
      add_finding(ctx, verdict.name_pos, "mutable-static",
                  "mutable static '" + verdict.name + why);
    }
  }

  // (b) namespace-scope definitions without `static`. A scope walk
  // classifies each '{' so class bodies and function bodies are skipped;
  // statements seen while every enclosing scope is a namespace are
  // candidate global definitions.
  enum class Kind { kNamespace, kClass, kOther };
  std::vector<Kind> stack;
  Kind pending = Kind::kOther;
  bool pending_set = false;
  std::size_t stmt_begin = 0;
  const auto at_ns_scope = [&stack] {
    for (const Kind kind : stack) {
      if (kind != Kind::kNamespace) return false;
    }
    return true;
  };
  const auto analyze_statement = [&](std::size_t begin, std::size_t end) {
    begin = skip_space(code, begin);
    if (begin >= end) return;
    // `static` declarations are already covered by (a).
    for (std::size_t i = begin; i + 6 <= end; ++i) {
      if (code[i] == 's' && word_at(code, i, "static")) return;
    }
    const DeclVerdict verdict = analyze_declaration(code, begin, end);
    if (verdict.flag) {
      add_finding(ctx, verdict.name_pos, "mutable-static",
                  "mutable namespace-scope state '" + verdict.name + why);
    }
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '#' && skip_space(code, stmt_begin) == i) {
      // Preprocessor directive: consume to end of line (with
      // backslash-continuations); directives never end in ';'.
      while (i < code.size() && code[i] != '\n') {
        if (code[i] == '\\' && i + 1 < code.size() && code[i + 1] == '\n') ++i;
        ++i;
      }
      stmt_begin = i + 1;
      continue;
    }
    if (is_ident_start(c)) {
      const std::string word = read_ident(code, i);
      if (word == "namespace") {
        pending = Kind::kNamespace;
        pending_set = true;
      } else if (word == "class" || word == "struct" || word == "union" ||
                 word == "enum") {
        pending = Kind::kClass;
        pending_set = true;
      }
      i += word.size() - 1;
      continue;
    }
    if (c == '{') {
      if (at_ns_scope()) analyze_statement(stmt_begin, i);
      stack.push_back(pending_set ? pending : Kind::kOther);
      pending_set = false;
      if (at_ns_scope()) stmt_begin = i + 1;
      continue;
    }
    if (c == '}') {
      if (!stack.empty()) stack.pop_back();
      if (at_ns_scope()) stmt_begin = i + 1;
      continue;
    }
    if (c == ';') {
      if (at_ns_scope()) analyze_statement(stmt_begin, i);
      stmt_begin = i + 1;
      pending_set = false;
      continue;
    }
  }
}

void rule_raw_memory_order(Context& ctx) {
  // The lock-free kernels — cancellation tokens and the sweep worker pool —
  // are the audited homes for relaxed orderings (docs/ANALYSIS.md).
  const std::string& path = ctx.file.path;
  if (path.find("sim/cancellation.") != std::string::npos ||
      path.find("core/sweep_runner.") != std::string::npos) {
    return;
  }
  const std::string& code = ctx.file.code;
  static const std::vector<std::string> kOrders = {
      "memory_order_relaxed", "memory_order_acquire", "memory_order_release",
      "memory_order_acq_rel", "memory_order_consume",
  };
  const std::string why =
      " outside the audited concurrency kernels (sim/cancellation.*, "
      "core/sweep_runner.*); use the seq_cst default or move the code there";
  for (const std::string& order : kOrders) {
    std::size_t pos = 0;
    while ((pos = code.find(order, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += order.size();
      if (!word_at(code, at, order)) continue;
      add_finding(ctx, at, "raw-memory-order", "explicit " + order + why);
    }
  }
  // C++20 spelling: memory_order::relaxed.
  std::size_t pos = 0;
  while ((pos = code.find("memory_order", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 12;
    if (!word_at(code, at, "memory_order")) continue;
    std::size_t i = skip_space(code, at + 12);
    if (code.compare(i, 2, "::") != 0) continue;
    const std::string member = read_ident(code, skip_space(code, i + 2));
    if (member == "relaxed" || member == "acquire" || member == "release" ||
        member == "acq_rel" || member == "consume") {
      add_finding(ctx, at, "raw-memory-order",
                  "explicit memory_order::" + member + why);
    }
  }
}

void rule_lock_order(Context& ctx) {
  const std::string& code = ctx.file.code;
  struct GuardSite {
    std::size_t pos = 0;
    std::size_t block_end = 0;
    std::string mutex_arg;
    bool deferred = false;
  };
  std::vector<GuardSite> sites;
  for (const std::string& guard : {std::string("lock_guard"), std::string("unique_lock")}) {
    std::size_t pos = 0;
    while ((pos = code.find(guard, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += guard.size();
      if (!word_at(code, at, guard)) continue;
      std::size_t i = at + guard.size();
      if (i < code.size() && code[i] == '<') {
        const std::size_t close = match_forward(code, i, '<', '>');
        if (close == std::string::npos) continue;
        i = close + 1;
      }
      i = skip_space(code, i);
      const std::string var = read_ident(code, i);  // guard variable name
      i = skip_space(code, i + var.size());
      if (i >= code.size() || (code[i] != '(' && code[i] != '{')) continue;
      const char open_c = code[i];
      const char close_c = open_c == '(' ? ')' : '}';
      const std::size_t close = match_forward(code, i, open_c, close_c);
      if (close == std::string::npos) continue;
      GuardSite site;
      site.pos = at;
      site.block_end = enclosing_block_end(code, at);
      // Normalise the mutex expression (strip whitespace) so `a. m` and
      // `a.m` compare equal.
      for (std::size_t k = i + 1; k < close; ++k) {
        if (std::isspace(static_cast<unsigned char>(code[k])) == 0) {
          site.mutex_arg.push_back(code[k]);
        }
      }
      if (site.mutex_arg.empty()) continue;  // default-constructed unique_lock
      site.deferred = site.mutex_arg.find("defer_lock") != std::string::npos ||
                      site.mutex_arg.find("adopt_lock") != std::string::npos ||
                      site.mutex_arg.find("try_to_lock") != std::string::npos;
      sites.push_back(std::move(site));
    }
  }
  for (std::size_t a = 0; a < sites.size(); ++a) {
    for (std::size_t b = a + 1; b < sites.size(); ++b) {
      if (sites[b].pos >= sites[a].block_end) continue;  // sequential scopes
      if (sites[b].deferred || sites[a].deferred) continue;
      if (sites[b].mutex_arg == sites[a].mutex_arg) continue;
      add_finding(ctx, sites[b].pos, "lock-order",
                  "nested lock of '" + sites[b].mutex_arg + "' while '" +
                      sites[a].mutex_arg +
                      "' is held; a second site locking in the opposite order "
                      "deadlocks — take both with one std::scoped_lock");
    }
  }
}

void rule_signal_unsafe(Context& ctx) {
  if (ctx.index.signal_handlers.empty()) return;
  const std::string& code = ctx.file.code;
  // Token → why it is unsafe in a handler. `string` catches std::string
  // construction (string_view passes the word-boundary check and is fine);
  // _exit/_Exit are safe and excluded by the same boundary rule.
  static const std::vector<std::pair<std::string, std::string>> kBanned = {
      {"new", "heap allocation"},
      {"malloc", "heap allocation"},
      {"calloc", "heap allocation"},
      {"realloc", "heap allocation"},
      {"free", "heap deallocation"},
      {"make_unique", "heap allocation"},
      {"make_shared", "heap allocation"},
      {"string", "std::string construction allocates"},
      {"to_string", "std::to_string allocates"},
      {"vector", "container construction allocates"},
      {"stringstream", "stream construction allocates"},
      {"ostringstream", "stream construction allocates"},
      {"printf", "stdio locks and may allocate"},
      {"fprintf", "stdio locks and may allocate"},
      {"snprintf", "stdio locks and may allocate"},
      {"sprintf", "stdio locks and may allocate"},
      {"puts", "stdio locks and may allocate"},
      {"fputs", "stdio locks and may allocate"},
      {"fopen", "stdio locks and may allocate"},
      {"fclose", "stdio locks and may allocate"},
      {"fflush", "stdio locks and may allocate"},
      {"fwrite", "stdio locks and may allocate"},
      {"cout", "iostreams lock and allocate"},
      {"cerr", "iostreams lock and allocate"},
      {"clog", "iostreams lock and allocate"},
      {"throw", "unwinding through a signal frame is undefined"},
      {"exit", "std::exit runs atexit handlers; use _exit or re-raise"},
      {"fmt", "formatting allocates"},
  };
  for (const FunctionDef& fn : ctx.functions) {
    if (ctx.index.signal_handlers.count(fn.name) == 0) continue;
    for (const auto& [token, why] : kBanned) {
      std::size_t pos = fn.body_begin;
      while (pos < fn.body_end &&
             (pos = code.find(token, pos)) != std::string::npos) {
        const std::size_t at = pos;
        pos += token.size();
        if (at >= fn.body_end) break;
        if (!word_at(code, at, token)) continue;
        add_finding(ctx, at, "signal-unsafe",
                    "'" + token + "' in signal handler '" + fn.name + "' (" + why +
                        "); only async-signal-safe calls (write(2), atomics, "
                        "sig_atomic_t stores) are defined here");
      }
    }
  }
}

}  // namespace elsimlint::detail
