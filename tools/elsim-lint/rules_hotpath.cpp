// Family "hot-path": allocation and dispatch hazards inside `// elsim-hot`
// regions. The annotation marks the per-event and per-scheduling-pass code
// the ROADMAP perf overhaul must keep allocation-free; hotness propagates
// one plain-call level through the symbol index (functions.cpp), so a
// helper factored out of a hot loop stays covered without re-annotation.
#include <cctype>

#include "elsim-lint/internal.h"

namespace elsimlint::detail {

namespace {

/// Owning containers whose construction allocates (or may allocate on
/// first growth) — flagged when declared inside a hot body.
const std::vector<std::string>& owning_containers() {
  static const std::vector<std::string> kContainers = {
      "vector", "deque",         "list",          "map",
      "set",    "unordered_map", "unordered_set", "multimap",
      "multiset", "basic_string",
  };
  return kContainers;
}

/// The identifier chain tail before a `.member` / `->member` use at
/// `member_pos` (e.g. `queue_view_` for `state.queue_view_.push_back`).
std::string owner_before(const std::string& code, std::size_t member_pos,
                         std::size_t lower_bound) {
  std::size_t i = member_pos;
  if (i >= 2 && code[i - 1] == '>' && code[i - 2] == '-') {
    i -= 2;
  } else if (i >= 1 && code[i - 1] == '.') {
    i -= 1;
  } else {
    return "";
  }
  std::size_t end = i;
  while (end > lower_bound && std::isspace(static_cast<unsigned char>(code[end - 1]))) {
    --end;
  }
  std::size_t begin = end;
  while (begin > lower_bound && is_ident(code[begin - 1])) --begin;
  if (begin == end) return "";
  return code.substr(begin, end - begin);
}

/// Calls `fn(pos)` for every position in [begin, end) where `token` occurs
/// with word boundaries.
template <typename Fn>
void for_each_word(const std::string& code, std::size_t begin, std::size_t end,
                   const std::string& token, Fn fn) {
  std::size_t pos = begin;
  while (pos < end && (pos = code.find(token, pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += token.size();
    if (at >= end) break;
    if (word_at(code, at, token)) fn(at);
  }
}

}  // namespace

void rule_hot_alloc(Context& ctx) {
  const std::string& code = ctx.file.code;
  std::set<std::size_t> seen;
  const auto flag = [&](std::size_t pos, const std::string& what) {
    if (!seen.insert(pos).second) return;
    add_finding(ctx, pos, "hot-alloc",
                what + " in elsim-hot region; allocate outside the hot path "
                       "(member scratch buffer, reserve) or suppress with a rationale");
  };
  for (const FunctionDef& fn : ctx.functions) {
    if (!is_hot(ctx.index, fn)) continue;
    const std::size_t begin = fn.body_begin;
    const std::size_t end = fn.body_end;

    for_each_word(code, begin, end, "new",
                  [&](std::size_t at) { flag(at, "'new' allocates"); });
    for (const std::string& call : {std::string("make_unique"), std::string("make_shared"),
                                    std::string("malloc"), std::string("calloc"),
                                    std::string("realloc"), std::string("strdup"),
                                    std::string("to_string")}) {
      for_each_word(code, begin, end, call,
                    [&](std::size_t at) { flag(at, "'" + call + "' allocates"); });
    }

    // std::function construction: type-erased callables allocate when the
    // target outgrows the small-object buffer.
    for_each_word(code, begin, end, "function", [&](std::size_t at) {
      const std::size_t i = skip_space(code, at + 8);
      if (i < code.size() && code[i] == '<') {
        flag(at, "std::function construction may allocate");
      }
    });

    // Local owning-container declarations / temporaries.
    for (const std::string& container : owning_containers()) {
      for_each_word(code, begin, end, container, [&](std::size_t at) {
        std::size_t i = at + container.size();
        if (i >= code.size() || code[i] != '<') return;
        const std::size_t close = match_forward(code, i, '<', '>');
        if (close == std::string::npos) return;
        i = skip_space(code, close + 1);
        if (i < code.size() &&
            (is_ident_start(code[i]) || code[i] == '(' || code[i] == '{')) {
          flag(at, "local '" + container + "' construction allocates");
        }
      });
    }
    // std::string declarations/temporaries (string_view fails the word
    // boundary and is correctly exempt).
    for_each_word(code, begin, end, "string", [&](std::size_t at) {
      std::size_t i = at + 6;
      if (i < code.size() && (code[i] == '(' || code[i] == '{')) {
        flag(at, "std::string construction allocates");
        return;
      }
      i = skip_space(code, i);
      if (i > at + 6 && i < code.size() && is_ident_start(code[i]) &&
          !word_at(code, i, "const")) {
        flag(at, "local std::string construction allocates");
      }
    });
    for (const std::string& stream : {std::string("ostringstream"), std::string("stringstream")}) {
      for_each_word(code, begin, end, stream, [&](std::size_t at) {
        flag(at, "'" + stream + "' construction allocates");
      });
    }

    // String concatenation: `+` with a string literal operand.
    for (std::size_t i = begin; i < end && i < code.size(); ++i) {
      if (code[i] != '+') continue;
      if (i + 1 < code.size() && (code[i + 1] == '+' || code[i + 1] == '=')) {
        ++i;
        continue;
      }
      if (i > 0 && code[i - 1] == '+') continue;
      std::size_t left = i;
      while (left > begin && std::isspace(static_cast<unsigned char>(code[left - 1]))) {
        --left;
      }
      const std::size_t right = skip_space(code, i + 1);
      if ((left > begin && code[left - 1] == '"') ||
          (right < code.size() && code[right] == '"')) {
        flag(i, "string concatenation allocates");
      }
    }
  }
}

void rule_hot_container_growth(Context& ctx) {
  const std::string& code = ctx.file.code;
  for (const FunctionDef& fn : ctx.functions) {
    if (!is_hot(ctx.index, fn)) continue;
    // Containers with a visible `owner.reserve(...)` in this body.
    std::set<std::string> reserved;
    for_each_word(code, fn.body_begin, fn.body_end, "reserve", [&](std::size_t at) {
      const std::string owner = owner_before(code, at, fn.body_begin);
      if (!owner.empty()) reserved.insert(owner);
    });
    for (const std::string& grow : {std::string("push_back"), std::string("emplace_back")}) {
      for_each_word(code, fn.body_begin, fn.body_end, grow, [&](std::size_t at) {
        const std::size_t paren = skip_space(code, at + grow.size());
        if (paren >= code.size() || code[paren] != '(') return;
        const std::string owner = owner_before(code, at, fn.body_begin);
        if (!owner.empty() && reserved.count(owner) != 0) return;
        add_finding(ctx, at, "hot-container-growth",
                    "'" + (owner.empty() ? grow : owner + "." + grow) +
                        "' in elsim-hot region without a visible reserve on the "
                        "same container in this function; reserve outside the "
                        "hot loop or suppress with a rationale");
      });
    }
  }
}

void rule_hot_virtual_loop(Context& ctx) {
  const std::string& code = ctx.file.code;
  if (ctx.index.virtual_functions.empty()) return;
  std::set<std::size_t> seen;

  // Scans one loop body [begin, end) for `.name(` / `->name(` where `name`
  // is a known virtual member.
  const auto scan_loop_body = [&](std::size_t begin, std::size_t end,
                                  const FunctionDef& fn) {
    for (std::size_t i = begin; i < end && i < code.size(); ++i) {
      const bool arrow = code[i] == '-' && i + 1 < code.size() && code[i + 1] == '>';
      const bool dot = code[i] == '.';
      if (!arrow && !dot) continue;
      const std::size_t name_pos = skip_space(code, i + (arrow ? 2 : 1));
      const std::string name = read_ident(code, name_pos);
      if (name.empty() || ctx.index.virtual_functions.count(name) == 0) continue;
      const std::size_t paren = skip_space(code, name_pos + name.size());
      if (paren >= code.size() || code[paren] != '(') continue;
      if (!seen.insert(name_pos).second) continue;
      add_finding(ctx, name_pos, "hot-virtual-loop",
                  "virtual dispatch '" + name + "' inside a loop in elsim-hot "
                  "region '" + fn.qualified +
                  "' pays an indirect branch per iteration; hoist the call or "
                  "devirtualize, or suppress with a rationale");
    }
  };

  for (const FunctionDef& fn : ctx.functions) {
    if (!is_hot(ctx.index, fn)) continue;
    // for (...) body / while (...) body — body is the following {...} block
    // or the single statement up to ';'.
    for (const std::string& keyword : {std::string("for"), std::string("while")}) {
      for_each_word(code, fn.body_begin, fn.body_end, keyword, [&](std::size_t at) {
        const std::size_t open = skip_space(code, at + keyword.size());
        if (open >= code.size() || code[open] != '(') return;
        const std::size_t close = match_forward(code, open, '(', ')');
        if (close == std::string::npos) return;
        std::size_t body = skip_space(code, close + 1);
        if (body < code.size() && code[body] == '{') {
          const std::size_t body_end = match_forward(code, body, '{', '}');
          if (body_end != std::string::npos) scan_loop_body(body + 1, body_end, fn);
        } else {
          const std::size_t semi = code.find(';', body);
          if (semi != std::string::npos) scan_loop_body(body, semi, fn);
        }
      });
    }
    // do { ... } while (...);
    for_each_word(code, fn.body_begin, fn.body_end, "do", [&](std::size_t at) {
      const std::size_t body = skip_space(code, at + 2);
      if (body >= code.size() || code[body] != '{') return;
      const std::size_t body_end = match_forward(code, body, '{', '}');
      if (body_end != std::string::npos) scan_loop_body(body + 1, body_end, fn);
    });
  }
}

}  // namespace elsimlint::detail
