// Baseline workflow: a committed elsim-lint-baseline-v1 file records
// accepted unsuppressed findings so a new rule can land (and gate on
// regressions) before the tree is clean. Keys are file|rule|snippet —
// line-number independent, so edits above a baselined finding do not
// invalidate it — and counted as a multiset so a duplicated hazard still
// fails.
#include <stdexcept>

#include "elsim-lint/lint.h"
#include "json/json.h"

namespace elsimlint {

namespace json = elastisim::json;

namespace {
constexpr const char* kSchema = "elsim-lint-baseline-v1";
}  // namespace

std::string baseline_key(const Finding& finding) {
  return finding.file + "|" + finding.rule + "|" + finding.snippet;
}

Baseline parse_baseline(const std::string& text) {
  json::Value root;
  try {
    root = json::parse(text);
  } catch (const std::exception& error) {
    throw std::runtime_error(std::string("baseline: ") + error.what());
  }
  if (root.member_or("schema", "") != kSchema) {
    throw std::runtime_error(
        std::string("baseline: unrecognised schema (expected ") + kSchema + ")");
  }
  const json::Value* items = root.find("findings");
  if (items == nullptr || !items->is_array()) {
    throw std::runtime_error("baseline: missing findings array");
  }
  Baseline baseline;
  for (const json::Value& item : items->as_array()) {
    Finding finding;
    finding.file = item.member_or("file", "");
    finding.rule = item.member_or("rule", "");
    finding.snippet = item.member_or("snippet", "");
    if (finding.rule.empty()) {
      throw std::runtime_error("baseline: finding entry without a rule");
    }
    ++baseline.accepted[baseline_key(finding)];
  }
  return baseline;
}

std::string baseline_to_json(const std::vector<Finding>& findings) {
  json::Array items;
  for (const Finding& finding : findings) {
    if (finding.suppressed) continue;  // already waived in source
    json::Object item;
    item["file"] = finding.file;
    item["rule"] = finding.rule;
    item["snippet"] = finding.snippet;
    items.push_back(json::Value(std::move(item)));
  }
  json::Object out;
  out["schema"] = kSchema;
  out["findings"] = json::Value(std::move(items));
  return json::dump_pretty(json::Value(std::move(out)));
}

std::size_t apply_baseline(std::vector<Finding>& findings, const Baseline& baseline) {
  std::map<std::string, std::size_t> budget = baseline.accepted;
  std::size_t marked = 0;
  for (Finding& finding : findings) {
    if (finding.suppressed) continue;
    const auto it = budget.find(baseline_key(finding));
    if (it == budget.end() || it->second == 0) continue;
    --it->second;
    finding.baselined = true;
    ++marked;
  }
  return marked;
}

}  // namespace elsimlint
