// elsim-lint: project-specific determinism and robustness linter.
//
// ElastiSim promises byte-identical output across same-seed runs. The
// hazards that silently break that promise are lexical enough to catch
// without a full C++ front end: iterating an unordered container into an
// output path, drawing entropy outside util::Rng, ordering by pointer
// value, comparing floats with ==, and switches that silently ignore a
// newly added enumerator. This library implements a two-pass scan:
//
//   pass 1  builds a cross-file symbol index (names declared as unordered
//           containers, names typed double/float/SimTime, enum class
//           definitions) over the header files,
//   pass 2  re-scans each file and applies the rules against the header
//           index merged with that file's own declarations — locals in one
//           translation unit never colour name lookups in another.
//
// Comments and string literals are blanked before matching, so prose never
// triggers a rule. Findings can be waived in place with
//
//   // elsim-lint: allow(<rule>[, <rule>...])   or   allow(all)
//
// on the offending line or the line above. See docs/ANALYSIS.md for the
// rule catalog and the rationale behind each rule.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace elsimlint {

struct RuleInfo {
  std::string name;
  std::string summary;
};

/// The rule catalog, in report order.
const std::vector<RuleInfo>& rules();

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
  std::string snippet;  // the trimmed offending source line
  bool suppressed = false;
};

/// Cross-file symbol index built by pass 1.
struct SymbolIndex {
  /// Variable/member names declared as std::unordered_map / unordered_set.
  std::set<std::string> unordered_vars;
  /// Names declared double/float/SimTime (variables, members, parameters,
  /// and functions returning them).
  std::set<std::string> double_vars;
  /// enum class name -> enumerator names.
  std::map<std::string, std::set<std::string>> enums;
};

/// One input file after lexical preprocessing.
struct SourceFile {
  std::string path;
  /// Original text, split into lines (for snippets).
  std::vector<std::string> lines;
  /// The text with comments and string/char literals blanked to spaces
  /// (newlines preserved), so rules match code only.
  std::string code;
  /// Per-line comment text, for suppression parsing.
  std::vector<std::string> comments;
};

/// Lexes `text`: blanks comments, string/char/raw-string literals.
SourceFile preprocess(std::string path, const std::string& text);

/// Pass 1: accumulates declarations from `file` into `index`.
void index_symbols(const SourceFile& file, SymbolIndex& index);

/// Pass 2: applies `enabled` rules (empty = all) to `file`, against `index`
/// merged with the file's own declarations.
std::vector<Finding> lint_file(const SourceFile& file, const SymbolIndex& index,
                               const std::set<std::string>& enabled);

/// Machine-readable report (schema documented in docs/ANALYSIS.md).
std::string findings_to_json(const std::vector<Finding>& findings,
                             std::size_t files_scanned);

}  // namespace elsimlint
