// elsim-lint: project-specific determinism, concurrency, and hot-path
// linter.
//
// ElastiSim promises byte-identical output across same-seed runs, and since
// the sweep orchestrator landed the library also runs concurrently on a
// worker pool. The hazards that silently break those promises are lexical
// enough to catch without a full C++ front end. Rules are grouped into
// three families:
//
//   determinism  unordered iteration into output paths, raw entropy,
//                pointer ordering, float ==, enum switches without default
//   concurrency  mutable static/global state, raw memory_order arguments
//                outside the audited kernels, nested locks on distinct
//                mutexes, non-async-signal-safe calls in signal handlers
//   hot-path     heap allocation, unreserved container growth, and
//                virtual-dispatch-in-loop inside `// elsim-hot` regions
//
// The scan is two-pass:
//
//   pass 1  builds a cross-file symbol index over the headers (unordered
//           containers, floating names, enums, virtual members) and over
//           all files for function-level facts (elsim-hot annotations,
//           plain callees, signal-handler registrations),
//   pass 2  re-scans each file and applies the rules against the shared
//           index merged with that file's own declarations — locals in one
//           translation unit never colour name lookups in another.
//
// Comments and string literals are blanked before matching, so prose never
// triggers a rule. Findings can be waived in place with
//
//   // elsim-lint: allow(<rule>[, <rule>...])   or   allow(all)
//
// on the offending line or the line above, and a baseline file
// (--baseline) accepts a recorded set of findings so new rules can land
// before the tree is clean. See docs/ANALYSIS.md for the rule catalog and
// the rationale behind each rule.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace elsimlint {

struct RuleInfo {
  std::string name;
  std::string family;    // "determinism" | "concurrency" | "hot-path"
  std::string severity;  // default severity; "error" findings fail the run
  std::string summary;
};

/// The rule catalog, in report order.
const std::vector<RuleInfo>& rules();

/// Catalog entry for `name`; nullptr when unknown.
const RuleInfo* find_rule(const std::string& name);

/// Family of `rule` ("unknown" when not in the catalog).
const std::string& rule_family(const std::string& rule);

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
  std::string snippet;  // the trimmed offending source line
  bool suppressed = false;
  bool baselined = false;  // accepted by a --baseline file
};

/// Cross-file symbol index built by pass 1.
struct SymbolIndex {
  /// Variable/member names declared as std::unordered_map / unordered_set.
  std::set<std::string> unordered_vars;
  /// Names declared double/float/SimTime (variables, members, parameters,
  /// and functions returning them).
  std::set<std::string> double_vars;
  /// enum class name -> enumerator names.
  std::map<std::string, std::set<std::string>> enums;
  /// Member function names declared `virtual` (for hot-virtual-loop).
  std::set<std::string> virtual_functions;
  /// Functions carrying a `// elsim-hot` annotation, by qualified name
  /// ("Engine::run"; plain functions by their bare name).
  std::set<std::string> hot_annotated;
  /// Plain (unqualified, non-member-dotted) callees of each annotated
  /// function, keyed by qualified name. Feeds one-level hot propagation.
  std::map<std::string, std::set<std::string>> hot_callees;
  /// Function names registered as signal handlers (std::signal/sigaction).
  std::set<std::string> signal_handlers;
  /// Finalised hot set: annotated qualified names plus their plain callees
  /// (bare names). Filled by finalize_index().
  std::set<std::string> hot_functions;
};

/// One input file after lexical preprocessing.
struct SourceFile {
  std::string path;
  /// Original text, split into lines (for snippets).
  std::vector<std::string> lines;
  /// The text with comments and string/char literals blanked to spaces
  /// (newlines preserved), so rules match code only.
  std::string code;
  /// Per-line comment text, for suppression and annotation parsing.
  std::vector<std::string> comments;
};

/// Lexes `text`: blanks comments, string/char/raw-string literals.
SourceFile preprocess(std::string path, const std::string& text);

/// Pass 1 (headers): accumulates declarations from `file` into `index`.
void index_symbols(const SourceFile& file, SymbolIndex& index);

/// Pass 1 (all files): accumulates function-level facts — elsim-hot
/// annotations, their plain callees, signal-handler registrations.
void index_functions(const SourceFile& file, SymbolIndex& index);

/// Computes `index.hot_functions` from the annotations and callee map.
/// Idempotent; call after the last index_functions().
void finalize_index(SymbolIndex& index);

/// Pass 2: applies `enabled` rules (empty = all) to `file`, against `index`
/// merged with the file's own declarations.
std::vector<Finding> lint_file(const SourceFile& file, const SymbolIndex& index,
                               const std::set<std::string>& enabled);

/// Machine-readable report (schema documented in docs/ANALYSIS.md).
std::string findings_to_json(const std::vector<Finding>& findings,
                             std::size_t files_scanned);

/// A recorded set of accepted findings (--baseline). Keys are
/// file|rule|snippet — line-number independent, so unrelated edits above a
/// baselined finding do not invalidate it — counted as a multiset.
struct Baseline {
  std::map<std::string, std::size_t> accepted;
};

/// The baseline identity of `finding`.
std::string baseline_key(const Finding& finding);

/// Parses a baseline file; throws std::runtime_error on malformed input or
/// an unrecognised schema tag.
Baseline parse_baseline(const std::string& text);

/// Serialises the unsuppressed findings as a baseline file
/// (elsim-lint-baseline-v1).
std::string baseline_to_json(const std::vector<Finding>& findings);

/// Marks findings accepted by `baseline` (each recorded entry absorbs at
/// most one finding); returns how many were marked.
std::size_t apply_baseline(std::vector<Finding>& findings, const Baseline& baseline);

}  // namespace elsimlint
