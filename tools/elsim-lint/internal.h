// Shared lexical helpers, function-definition extraction, and the per-file
// rule-engine context. Internal to the linter library — the public surface
// is elsim-lint/lint.h; tests exercise these paths through lint_file().
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "elsim-lint/lint.h"

namespace elsimlint::detail {

bool is_ident(char c);
bool is_ident_start(char c);
std::string trim(const std::string& text);

/// True when code[pos, pos+word.size()) is `word` with identifier
/// boundaries on both sides.
bool word_at(const std::string& code, std::size_t pos, const std::string& word);

std::size_t skip_space(const std::string& code, std::size_t pos);

/// Reads the identifier starting at `pos`; empty if none.
std::string read_ident(const std::string& code, std::size_t pos);

/// With code[open] an opening bracket, returns the index of its matching
/// closing bracket (or npos). Works for (), <>, {}.
std::size_t match_forward(const std::string& code, std::size_t open, char open_c,
                          char close_c);

/// Index of the '}' closing the block that encloses `pos` (code.size()
/// when `pos` is not inside a block).
std::size_t enclosing_block_end(const std::string& code, std::size_t pos);

/// 1-based line number of `pos` in `code` (code preserves newlines).
class LineMap {
 public:
  explicit LineMap(const std::string& code);
  std::size_t line_of(std::size_t pos) const;

 private:
  std::vector<std::size_t> starts_;
};

/// One function definition found lexically: `[Qual::]name(...) ... { body }`.
struct FunctionDef {
  std::string name;       ///< final component ("run")
  std::string qualified;  ///< as written ("Engine::run"; == name when plain)
  std::size_t name_pos = 0;
  std::size_t body_begin = 0;  ///< index of the opening '{'
  std::size_t body_end = 0;    ///< index of the matching '}'
};

/// All function definitions in `file`, in order of appearance.
std::vector<FunctionDef> find_functions(const SourceFile& file);

/// True when `fn` carries the `elsim-hot` comment annotation on its
/// signature line or up to two lines above.
bool has_hot_annotation(const SourceFile& file, const FunctionDef& fn,
                        const LineMap& lines);

/// Unqualified callees invoked as plain calls (`helper(...)`; member calls
/// on other objects and ns-qualified calls are excluded) inside fn's body.
std::set<std::string> plain_callees(const std::string& code, const FunctionDef& fn);

/// True when `fn` is a hot region under `index`: annotated itself
/// (qualified-name match) or one plain call away from an annotated
/// function (bare-name match).
bool is_hot(const SymbolIndex& index, const FunctionDef& fn);

struct Context {
  const SourceFile& file;
  const SymbolIndex& index;
  const LineMap& lines;
  const std::vector<FunctionDef>& functions;
  std::vector<Finding>& findings;
};

void add_finding(Context& ctx, std::size_t pos, const std::string& rule,
                 std::string message);

// Family "concurrency".
void rule_mutable_static(Context& ctx);
void rule_raw_memory_order(Context& ctx);
void rule_lock_order(Context& ctx);
void rule_signal_unsafe(Context& ctx);

// Family "hot-path".
void rule_hot_alloc(Context& ctx);
void rule_hot_container_growth(Context& ctx);
void rule_hot_virtual_loop(Context& ctx);

}  // namespace elsimlint::detail
