// elsim-lint command-line driver.
//
//   elsim-lint [--json <report.json>] [--rules <a,b,...>] [--list-rules]
//              [--quiet] <file-or-dir>...
//
// Scans the given files (directories are walked recursively for C++
// sources), prints findings as "file:line: [rule] message", and exits
//   0  no unsuppressed findings,
//   1  at least one unsuppressed finding,
//   2  usage or I/O error.
// --json additionally writes the machine-readable report (schema in
// docs/ANALYSIS.md) whether or not findings exist.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "elsim-lint/lint.h"
#include "util/flags.h"

namespace {

bool is_cpp_source(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" || ext == ".hpp";
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  // --quiet and --list-rules are presence-only; without the allowlist
  // "--quiet src" would swallow "src" as the flag's value.
  elastisim::util::Flags flags(argc, argv, {"quiet", "list-rules"});

  if (flags.get("list-rules", false)) {
    for (const elsimlint::RuleInfo& rule : elsimlint::rules()) {
      std::printf("%-20s %s\n", rule.name.c_str(), rule.summary.c_str());
    }
    return 0;
  }

  std::set<std::string> enabled;
  const std::string rule_list = flags.get("rules", std::string());
  if (!rule_list.empty() && rule_list != "true") {
    std::size_t start = 0;
    while (start <= rule_list.size()) {
      std::size_t comma = rule_list.find(',', start);
      if (comma == std::string::npos) comma = rule_list.size();
      const std::string name = rule_list.substr(start, comma - start);
      if (!name.empty()) {
        const auto& catalog = elsimlint::rules();
        const bool known =
            std::any_of(catalog.begin(), catalog.end(),
                        [&name](const elsimlint::RuleInfo& r) { return r.name == name; });
        if (!known) {
          std::fprintf(stderr, "error: unknown rule '%s' (--list-rules shows the catalog)\n",
                       name.c_str());
          return 2;
        }
        enabled.insert(name);
      }
      start = comma + 1;
    }
  }

  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: %s [--json <report.json>] [--rules <a,b,...>] [--list-rules]\n"
                 "       [--quiet] <file-or-dir>...\n",
                 flags.program().c_str());
    return 2;
  }

  // Collect the worklist, sorted so findings (and the JSON report) are
  // ordered identically on every run and filesystem.
  std::vector<std::filesystem::path> sources;
  try {
    for (const std::string& target : flags.positional()) {
      const std::filesystem::path path(target);
      if (std::filesystem::is_directory(path)) {
        for (const auto& entry : std::filesystem::recursive_directory_iterator(path)) {
          if (entry.is_regular_file() && is_cpp_source(entry.path())) {
            sources.push_back(entry.path());
          }
        }
      } else if (std::filesystem::is_regular_file(path)) {
        sources.push_back(path);
      } else {
        std::fprintf(stderr, "error: no such file or directory: %s\n", target.c_str());
        return 2;
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());

  try {
    // Pass 1: lex everything once. Only headers feed the shared symbol
    // index — declarations local to one .cpp are merged back in by
    // lint_file for that file alone, so a `double end` in one translation
    // unit cannot colour name lookups in another.
    std::vector<elsimlint::SourceFile> files;
    files.reserve(sources.size());
    elsimlint::SymbolIndex index;
    for (const std::filesystem::path& path : sources) {
      files.push_back(elsimlint::preprocess(path.generic_string(), read_file(path)));
      const std::string ext = path.extension().string();
      if (ext == ".h" || ext == ".hpp") elsimlint::index_symbols(files.back(), index);
    }

    // Pass 2: apply the rules.
    std::vector<elsimlint::Finding> findings;
    for (const elsimlint::SourceFile& file : files) {
      std::vector<elsimlint::Finding> batch = elsimlint::lint_file(file, index, enabled);
      findings.insert(findings.end(), std::make_move_iterator(batch.begin()),
                      std::make_move_iterator(batch.end()));
    }

    const bool quiet = flags.get("quiet", false);
    std::size_t unsuppressed = 0;
    for (const elsimlint::Finding& finding : findings) {
      if (finding.suppressed) continue;
      ++unsuppressed;
      if (!quiet) {
        std::printf("%s:%zu: [%s] %s\n    %s\n", finding.file.c_str(), finding.line,
                    finding.rule.c_str(), finding.message.c_str(), finding.snippet.c_str());
      }
    }

    const std::string json_path = flags.get("json", std::string());
    if (!json_path.empty() && json_path != "true") {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
        return 2;
      }
      out << elsimlint::findings_to_json(findings, files.size()) << "\n";
    }

    if (!quiet) {
      std::printf("%zu files scanned, %zu findings (%zu suppressed)\n", files.size(),
                  findings.size(), findings.size() - unsuppressed);
    }
    return unsuppressed == 0 ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
