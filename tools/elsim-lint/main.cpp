// elsim-lint command-line driver.
//
//   elsim-lint [--json <report.json>] [--rules <a,b,...>] [--list-rules]
//              [--baseline <file>] [--update-baseline] [--quiet]
//              <file-or-dir>...
//
// Scans the given files (directories are walked recursively for C++
// sources), prints findings as "file:line: [rule] message", and exits
//   0  no new unsuppressed findings,
//   1  at least one new unsuppressed finding,
//   2  usage or I/O error (including a missing or malformed baseline).
// --json additionally writes the machine-readable report (schema in
// docs/ANALYSIS.md) whether or not findings exist. --baseline accepts the
// findings recorded in <file> (only findings outside it fail the run);
// --update-baseline re-records <file> from the current scan and exits 0.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "elsim-lint/lint.h"
#include "util/flags.h"

namespace {

bool is_cpp_source(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" || ext == ".hpp";
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  // Presence-only flags need the allowlist; without it "--quiet src" would
  // swallow "src" as the flag's value.
  elastisim::util::Flags flags(argc, argv, {"quiet", "list-rules", "update-baseline"});

  if (flags.get("list-rules", false)) {
    std::printf("%-22s %-12s %-8s %s\n", "rule", "family", "severity", "description");
    for (const elsimlint::RuleInfo& rule : elsimlint::rules()) {
      std::printf("%-22s %-12s %-8s %s\n", rule.name.c_str(), rule.family.c_str(),
                  rule.severity.c_str(), rule.summary.c_str());
    }
    return 0;
  }

  std::set<std::string> enabled;
  const std::string rule_list = flags.get("rules", std::string());
  if (!rule_list.empty() && rule_list != "true") {
    std::size_t start = 0;
    while (start <= rule_list.size()) {
      std::size_t comma = rule_list.find(',', start);
      if (comma == std::string::npos) comma = rule_list.size();
      const std::string name = rule_list.substr(start, comma - start);
      if (!name.empty()) {
        if (elsimlint::find_rule(name) == nullptr) {
          std::fprintf(stderr, "error: unknown rule '%s' (--list-rules shows the catalog)\n",
                       name.c_str());
          return 2;
        }
        enabled.insert(name);
      }
      start = comma + 1;
    }
  }

  const std::string baseline_path = flags.get("baseline", std::string());
  const bool have_baseline = !baseline_path.empty() && baseline_path != "true";
  const bool update_baseline = flags.get("update-baseline", false);
  if ((update_baseline && !have_baseline) ||
      (!baseline_path.empty() && baseline_path == "true")) {
    std::fprintf(stderr, "error: --baseline requires a file path%s\n",
                 update_baseline ? " (required by --update-baseline)" : "");
    return 2;
  }

  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: %s [--json <report.json>] [--rules <a,b,...>] [--list-rules]\n"
                 "       [--baseline <file>] [--update-baseline] [--quiet]\n"
                 "       <file-or-dir>...\n",
                 flags.program().c_str());
    return 2;
  }

  // Collect the worklist, sorted so findings (and the JSON report) are
  // ordered identically on every run and filesystem.
  std::vector<std::filesystem::path> sources;
  try {
    for (const std::string& target : flags.positional()) {
      const std::filesystem::path path(target);
      if (std::filesystem::is_directory(path)) {
        for (const auto& entry : std::filesystem::recursive_directory_iterator(path)) {
          if (entry.is_regular_file() && is_cpp_source(entry.path())) {
            sources.push_back(entry.path());
          }
        }
      } else if (std::filesystem::is_regular_file(path)) {
        sources.push_back(path);
      } else {
        std::fprintf(stderr, "error: no such file or directory: %s\n", target.c_str());
        return 2;
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());

  try {
    // Pass 1: lex everything once. Only headers feed the shared symbol
    // index — declarations local to one .cpp are merged back in by
    // lint_file for that file alone, so a `double end` in one translation
    // unit cannot colour name lookups in another. Function-level facts
    // (elsim-hot annotations, signal-handler registrations) come from all
    // files: a handler is registered in one place and defined in another.
    std::vector<elsimlint::SourceFile> files;
    files.reserve(sources.size());
    elsimlint::SymbolIndex index;
    for (const std::filesystem::path& path : sources) {
      files.push_back(elsimlint::preprocess(path.generic_string(), read_file(path)));
      const std::string ext = path.extension().string();
      if (ext == ".h" || ext == ".hpp") elsimlint::index_symbols(files.back(), index);
      elsimlint::index_functions(files.back(), index);
    }
    elsimlint::finalize_index(index);

    // Pass 2: apply the rules.
    std::vector<elsimlint::Finding> findings;
    for (const elsimlint::SourceFile& file : files) {
      std::vector<elsimlint::Finding> batch = elsimlint::lint_file(file, index, enabled);
      findings.insert(findings.end(), std::make_move_iterator(batch.begin()),
                      std::make_move_iterator(batch.end()));
    }

    // Baseline: re-record on --update-baseline, otherwise load and mark
    // accepted findings so only new ones affect the exit code.
    if (have_baseline) {
      if (update_baseline) {
        std::ofstream out(baseline_path);
        if (!out) {
          std::fprintf(stderr, "error: cannot write %s\n", baseline_path.c_str());
          return 2;
        }
        out << elsimlint::baseline_to_json(findings) << "\n";
      }
      std::string text;
      try {
        text = read_file(baseline_path);
      } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 2;
      }
      elsimlint::apply_baseline(findings, elsimlint::parse_baseline(text));
    }

    const bool quiet = flags.get("quiet", false);
    std::size_t suppressed = 0;
    std::size_t baselined = 0;
    std::size_t fresh = 0;
    for (const elsimlint::Finding& finding : findings) {
      if (finding.suppressed) {
        ++suppressed;
        continue;
      }
      if (finding.baselined) {
        ++baselined;
        continue;
      }
      ++fresh;
      if (!quiet) {
        std::printf("%s:%zu: [%s] %s\n    %s\n", finding.file.c_str(), finding.line,
                    finding.rule.c_str(), finding.message.c_str(), finding.snippet.c_str());
      }
    }

    const std::string json_path = flags.get("json", std::string());
    if (!json_path.empty() && json_path != "true") {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
        return 2;
      }
      out << elsimlint::findings_to_json(findings, files.size()) << "\n";
    }

    if (!quiet) {
      std::printf("%zu files scanned, %zu findings (%zu suppressed, %zu baselined, %zu new)\n",
                  files.size(), findings.size(), suppressed, baselined, fresh);
    }
    return fresh == 0 ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
