#!/usr/bin/env python3
"""Per-family gate over an elsim-lint JSON report (schema v2).

Usage: diff_families.py <report.json>

Prints one line per rule family (findings / suppressed / baselined / new)
and exits non-zero if any family carries new findings — CI runs this after
the baseline-aware lint step so the job log names the offending family
instead of a bare exit code.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"diff_families: cannot read report: {error}", file=sys.stderr)
        return 2
    if report.get("version") != 2 or not isinstance(report.get("families"), dict):
        print("diff_families: not an elsim-lint v2 report (missing families block)",
              file=sys.stderr)
        return 2

    failed = []
    print(f"{'family':<12} {'findings':>8} {'suppressed':>10} {'baselined':>9} {'new':>5}")
    for family, tally in report["families"].items():
        new = int(tally.get("new", 0))
        print(f"{family:<12} {int(tally.get('findings', 0)):>8} "
              f"{int(tally.get('suppressed', 0)):>10} "
              f"{int(tally.get('baselined', 0)):>9} {new:>5}")
        if new > 0:
            failed.append(family)
    if failed:
        print(f"diff_families: new findings in: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("diff_families: no new findings in any family")
    return 0


if __name__ == "__main__":
    sys.exit(main())
