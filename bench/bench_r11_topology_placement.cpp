// R11 (extension) — topology x placement ablation: a communication-heavy
// workload on all four interconnects under the three placement policies.
// Expected shape: on pod-structured topologies (fat-tree, dragonfly) with
// constrained uplinks, compact placement beats lowest-id beats spread; on a
// star network placement is irrelevant; the torus sits between (ring links
// penalize spreading).
#include "bench_common.h"

#include "core/batch_system.h"

using namespace elastisim;

int main() {
  bench::TelemetryScope telemetry("bench_r11_topology_placement");
  auto generator = bench::reference_workload(/*malleable_fraction=*/0.0, /*jobs=*/150);
  // Heavier, latency-tolerant exchanges so the interconnect matters.
  generator.comm_bytes = 4.0 * 1024 * 1024 * 1024;
  generator.mean_iteration_compute = 10.0;

  bench::table_header("R11 topology x placement (150 rigid jobs, comm-heavy, easy)",
                      "topology,placement,makespan_s,mean_turnaround_s,avg_utilization");
  for (const auto topology :
       {platform::TopologyKind::kStar, platform::TopologyKind::kFatTree,
        platform::TopologyKind::kDragonfly, platform::TopologyKind::kTorus}) {
    for (const auto [placement, placement_name] :
         {std::pair{core::PlacementPolicy::kLowestId, "lowest-id"},
          std::pair{core::PlacementPolicy::kCompact, "compact"},
          std::pair{core::PlacementPolicy::kSpread, "spread"}}) {
      auto platform = bench::reference_platform();
      platform.topology = topology;
      platform.pod_bandwidth = 12.5e9;  // tight uplinks: one node can saturate them
      core::BatchConfig batch;
      batch.placement = placement;
      auto result =
          bench::run(platform, "easy", workload::generate_workload(generator), batch);
      std::printf("%s,%s,%.0f,%.1f,%.4f\n", platform::to_string(topology).c_str(),
                  placement_name, result.makespan, result.recorder.mean_turnaround(),
                  result.recorder.average_utilization());
    }
  }
  return 0;
}
