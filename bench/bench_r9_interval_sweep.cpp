// R9 — Scheduling-interval sensitivity: the batch system is event-driven
// (interval 0 = schedule only at submissions, completions, and phase
// boundaries); adding a periodic timer on top changes little because the
// event-driven points already cover the decision moments. A *pure* timer
// would instead delay starts — visible here by comparing interval lengths.
#include "bench_common.h"

using namespace elastisim;

int main() {
  bench::TelemetryScope telemetry("bench_r9_interval_sweep");
  const auto platform = bench::reference_platform();
  const auto generator = bench::reference_workload(/*malleable_fraction=*/0.5);

  bench::table_header("R9 scheduling-interval sweep (50% malleable, easy-malleable)",
                      "interval_s,makespan_s,mean_wait_s,events_processed,rebalances");
  for (const double interval : {0.0, 10.0, 60.0, 300.0, 900.0}) {
    core::BatchConfig batch;
    batch.scheduling_interval = interval;
    auto result = bench::run(platform, "easy-malleable",
                             workload::generate_workload(generator), batch);
    std::printf("%.0f,%.0f,%.1f,%llu,%llu\n", interval, result.makespan,
                result.recorder.mean_wait(),
                static_cast<unsigned long long>(result.events_processed),
                static_cast<unsigned long long>(result.rebalances));
  }
  return 0;
}
