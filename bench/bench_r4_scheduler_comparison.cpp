// R4 — Scheduling-algorithm comparison: all six algorithms on three workload
// mixes (rigid-heavy, balanced, malleable-heavy). Expected shape: EASY and
// conservative dominate FCFS on rigid mixes; the malleable-aware policies
// dominate everything once a substantial share of jobs can resize;
// equal-share is competitive only at high malleability.
#include "bench_common.h"

using namespace elastisim;

int main() {
  bench::TelemetryScope telemetry("bench_r4_scheduler_comparison");
  const auto platform = bench::reference_platform();

  struct Mix {
    const char* name;
    double malleable;
    double moldable;
    double evolving;
  };
  const Mix mixes[] = {
      {"rigid-heavy", 0.1, 0.1, 0.0},
      {"balanced", 0.4, 0.2, 0.1},
      {"malleable-heavy", 0.8, 0.1, 0.1},
  };

  bench::table_header("R4 scheduler comparison (128 nodes, 200 jobs)",
                      "mix,scheduler,makespan_s,mean_wait_s,mean_bounded_slowdown,"
                      "avg_utilization,expansions,shrinks,killed");
  for (const Mix& mix : mixes) {
    auto generator = bench::reference_workload(mix.malleable);
    generator.moldable_fraction = mix.moldable;
    generator.evolving_fraction = mix.evolving;
    for (const std::string& scheduler : core::scheduler_names()) {
      auto result = bench::run(platform, scheduler, workload::generate_workload(generator));
      const stats::Recorder& recorder = result.recorder;
      std::printf("%s,%s,%.0f,%.1f,%.2f,%.4f,%d,%d,%zu\n", mix.name, scheduler.c_str(),
                  result.makespan, recorder.mean_wait(), recorder.mean_bounded_slowdown(),
                  recorder.average_utilization(), recorder.total_expansions(),
                  recorder.total_shrinks(), result.killed);
    }
  }
  return 0;
}
