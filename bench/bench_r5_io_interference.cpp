// R5 — I/O interference on the shared PFS: a compute job that periodically
// writes checkpoints co-runs with jobs streaming large output files. Both
// job classes have their own nodes (no CPU contention); every slowdown is
// PFS write-bandwidth interference.
//
// Expected shape (cf. the I/O-interference line of work from the same group):
// tiny checkpoints barely suffer — the writers do; as checkpoints grow, the
// interference flips onto the checkpointing application, up to multi-x
// slowdowns.
#include "bench_common.h"

using namespace elastisim;

namespace {

workload::Job checkpoint_job(workload::JobId id, int nodes, double compute_seconds,
                             double checkpoint_bytes, int iterations,
                             double flops_per_node) {
  workload::Job job;
  job.id = id;
  job.name = "checkpointer";
  job.requested_nodes = job.min_nodes = job.max_nodes = nodes;
  workload::Phase loop;
  loop.name = "compute+checkpoint";
  loop.iterations = iterations;
  loop.groups.push_back({workload::Task{
      "compute", workload::ComputeTask{compute_seconds * flops_per_node * nodes,
                                       workload::ScalingModel::kStrong, 0.0}}});
  loop.groups.push_back({workload::Task{
      "checkpoint",
      workload::IoTask{true, checkpoint_bytes, workload::ScalingModel::kStrong,
                       workload::IoTarget::kPfs}}});
  job.application.phases.push_back(std::move(loop));
  return job;
}

workload::Job writer_job(workload::JobId id, int nodes, double bytes_per_burst,
                         int iterations) {
  workload::Job job;
  job.id = id;
  job.name = "writer";
  job.requested_nodes = job.min_nodes = job.max_nodes = nodes;
  workload::Phase loop;
  loop.name = "stream-output";
  loop.iterations = iterations;
  loop.groups.push_back({workload::Task{
      "write", workload::IoTask{true, bytes_per_burst, workload::ScalingModel::kStrong,
                                workload::IoTarget::kPfs}}});
  job.application.phases.push_back(std::move(loop));
  return job;
}

double runtime_of(const stats::Recorder& recorder, workload::JobId id) {
  for (const auto& record : recorder.records()) {
    if (record.id == id) return record.runtime();
  }
  return -1.0;
}

}  // namespace

int main() {
  bench::TelemetryScope telemetry("bench_r5_io_interference");
  auto platform = bench::reference_platform(64);
  // Tighten the PFS so interference is visible against 12.5 GB/s links:
  // 16 writer nodes alone can saturate 40 GB/s.
  platform.pfs.write_bandwidth = 40e9;
  const double flops_per_node = platform.cores_per_node * platform.flops_per_core;

  constexpr int kCheckpointNodes = 16;
  constexpr int kWriterNodes = 16;
  constexpr int kIterations = 20;
  constexpr double kComputeSeconds = 10.0;
  const double writer_burst = 64.0 * 1024 * 1024 * 1024;  // 64 GiB per burst

  // Solo baselines.
  auto solo_ckpt = [&](double checkpoint_bytes) {
    std::vector<workload::Job> jobs;
    jobs.push_back(checkpoint_job(1, kCheckpointNodes, kComputeSeconds, checkpoint_bytes,
                                  kIterations, flops_per_node));
    return bench::run(platform, "fcfs", std::move(jobs));
  };
  std::vector<workload::Job> solo_writer_jobs;
  solo_writer_jobs.push_back(writer_job(2, kWriterNodes, writer_burst, kIterations));
  const double writer_alone =
      runtime_of(bench::run(platform, "fcfs", std::move(solo_writer_jobs)).recorder, 2);

  bench::table_header(
      "R5 PFS write interference (checkpointer 16 nodes vs 2 writers x 16 nodes, "
      "40 GB/s PFS)",
      "checkpoint_bytes,ckpt_alone_s,ckpt_shared_s,ckpt_slowdown,writer_alone_s,"
      "writer_shared_s,writer_slowdown");
  for (const double mib : {64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0}) {
    const double checkpoint_bytes = mib * 1024 * 1024;
    const double ckpt_alone = runtime_of(solo_ckpt(checkpoint_bytes).recorder, 1);

    std::vector<workload::Job> shared;
    shared.push_back(checkpoint_job(1, kCheckpointNodes, kComputeSeconds, checkpoint_bytes,
                                    kIterations, flops_per_node));
    shared.push_back(writer_job(2, kWriterNodes, writer_burst, kIterations));
    shared.push_back(writer_job(3, kWriterNodes, writer_burst, kIterations));
    auto result = bench::run(platform, "fcfs", std::move(shared));
    const double ckpt_shared = runtime_of(result.recorder, 1);
    const double writer_shared = runtime_of(result.recorder, 2);

    std::printf("%.0f,%.1f,%.1f,%.3f,%.1f,%.1f,%.3f\n", checkpoint_bytes, ckpt_alone,
                ckpt_shared, ckpt_shared / ckpt_alone, writer_alone, writer_shared,
                writer_shared / writer_alone);
  }
  return 0;
}
