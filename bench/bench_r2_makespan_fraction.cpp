// R2 — Makespan vs malleable-job fraction p in {0, 25, 50, 75, 100}%.
// The headline malleability result: makespan falls monotonically as more of
// the workload can be resized, under both malleable-aware policies, while a
// malleability-blind scheduler gains nothing.
#include "bench_common.h"

using namespace elastisim;

int main() {
  bench::TelemetryScope telemetry("bench_r2_makespan_fraction");
  const auto platform = bench::reference_platform();
  const char* schedulers[] = {"easy", "fcfs-malleable", "easy-malleable"};

  bench::table_header("R2 makespan vs malleable fraction (128 nodes, 200 jobs)",
                      "malleable_pct,scheduler,makespan_s,avg_utilization");
  for (const double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto generator = bench::reference_workload(fraction);
    for (const char* scheduler : schedulers) {
      auto result = bench::run(platform, scheduler, workload::generate_workload(generator));
      std::printf("%.0f,%s,%.0f,%.4f\n", fraction * 100.0, scheduler, result.makespan,
                  result.recorder.average_utilization());
    }
  }
  return 0;
}
