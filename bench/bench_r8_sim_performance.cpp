// R8 — Simulator performance (google-benchmark): wall-clock cost of a full
// simulation as a function of job count and cluster size, plus kernel
// microbenchmarks (event queue, fluid rebalance). Expected shape: near-linear
// in the number of jobs (events scale with jobs x phases), weak dependence on
// node count at fixed job count.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "sim/engine.h"

using namespace elastisim;

namespace {

void BM_FullSimulationJobs(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const auto platform = bench::reference_platform(128);
  auto generator = bench::reference_workload(0.5, jobs);
  const auto workload_jobs = workload::generate_workload(generator);
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto result = bench::run(platform, "easy-malleable", workload_jobs);
    events = result.events_processed;
    benchmark::DoNotOptimize(result.makespan);
  }
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["events"] = static_cast<double>(events);
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_FullSimulationJobs)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_FullSimulationNodes(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto platform = bench::reference_platform(nodes);
  auto generator = bench::reference_workload(0.5, 200);
  generator.max_nodes = static_cast<int>(nodes) / 2;
  const auto workload_jobs = workload::generate_workload(generator);
  for (auto _ : state) {
    auto result = bench::run(platform, "easy-malleable", workload_jobs);
    benchmark::DoNotOptimize(result.makespan);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_FullSimulationNodes)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_SchedulerAlgorithms(benchmark::State& state) {
  static const std::vector<std::string> names = core::scheduler_names();
  const std::string& scheduler = names[static_cast<std::size_t>(state.range(0))];
  const auto platform = bench::reference_platform(128);
  const auto workload_jobs =
      workload::generate_workload(bench::reference_workload(0.5, 200));
  for (auto _ : state) {
    auto result = bench::run(platform, scheduler, workload_jobs);
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetLabel(scheduler);
}
BENCHMARK(BM_SchedulerAlgorithms)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void BM_EventQueueChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < n; ++i) {
      queue.push(static_cast<double>((i * 7919) % n), [] {});
    }
    while (!queue.empty()) queue.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_EventQueueChurn)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FluidRebalance(benchmark::State& state) {
  // Cost of one add/remove cycle with `n` concurrent multi-resource
  // activities: the dominant kernel operation during busy simulations.
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Engine engine;
  std::vector<sim::ResourceId> resources;
  for (int r = 0; r < 64; ++r) {
    resources.push_back(engine.fluid().add_resource("r", 100.0));
  }
  std::vector<sim::ActivityId> active;
  for (std::size_t i = 0; i < n; ++i) {
    active.push_back(engine.fluid().start(
        {1e18,
         {{resources[i % resources.size()], 1.0},
          {resources[(i * 17 + 5) % resources.size()], 1.0}},
         sim::kTimeInfinity,
         "load"},
        [] {}));
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    engine.fluid().cancel(active[cursor]);
    active[cursor] = engine.fluid().start(
        {1e18, {{resources[cursor % resources.size()], 1.0}}, sim::kTimeInfinity, "swap"},
        [] {});
    cursor = (cursor + 1) % active.size();
  }
  state.SetLabel(std::to_string(n) + " active");
}
BENCHMARK(BM_FluidRebalance)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

// Expanded BENCHMARK_MAIN() so the telemetry scope brackets the whole run:
// ELSIM_BENCH_TELEMETRY=<dir> additionally writes
// <dir>/bench_r8_sim_performance.telemetry.json with per-run phase
// histograms next to google-benchmark's own output.
int main(int argc, char** argv) {
  bench::TelemetryScope telemetry("bench_r8_sim_performance");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
