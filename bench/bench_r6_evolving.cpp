// R6 — Evolving jobs under load: grant rate of application-initiated resize
// requests and turnaround as cluster pressure rises (arrival rate sweep).
// Expected shape: at low load nearly every grow request is granted; as load
// rises the free-node pool dries up and the grant rate collapses while
// shrink requests keep succeeding.
#include "bench_common.h"

using namespace elastisim;

int main() {
  bench::TelemetryScope telemetry("bench_r6_evolving");
  const auto platform = bench::reference_platform();

  bench::table_header(
      "R6 evolving requests vs load (30% evolving jobs, 128 nodes, 200 jobs)",
      "mean_interarrival_s,scheduler,requests,granted,grant_rate,mean_turnaround_s,"
      "expansions,shrinks");
  for (const double interarrival : {240.0, 120.0, 60.0, 30.0, 15.0}) {
    auto generator = bench::reference_workload(/*malleable_fraction=*/0.0);
    generator.evolving_fraction = 0.3;
    generator.evolving_phase_fraction = 0.5;
    generator.mean_interarrival = interarrival;
    for (const char* scheduler : {"easy", "easy-malleable"}) {
      auto result = bench::run(platform, scheduler, workload::generate_workload(generator));
      int requests = 0, granted = 0;
      for (const auto& record : result.recorder.records()) {
        requests += record.evolving_requests;
        granted += record.evolving_granted;
      }
      std::printf("%.0f,%s,%d,%d,%.3f,%.1f,%d,%d\n", interarrival, scheduler, requests,
                  granted, requests ? static_cast<double>(granted) / requests : 0.0,
                  result.recorder.mean_turnaround(), result.recorder.total_expansions(),
                  result.recorder.total_shrinks());
    }
  }
  return 0;
}
