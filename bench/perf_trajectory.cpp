// perf_trajectory — the committed performance-trajectory harness.
//
// Runs a fixed scenario grid (job scales x schedulers, pinned seeds, the
// reference 128-node platform) with the self-profiler enabled and writes
// BENCH_perf.json: one cell per (jobs, scheduler) with events/sec, wall
// seconds per 10k jobs, peak RSS, and the top-3 phases by exclusive time,
// under a build-provenance header (docs/FORMATS.md, elastisim-bench-perf-v1).
//
//   perf_trajectory [--out BENCH_perf.json] [--quick]
//
// The committed BENCH_perf.json at the repo root is regenerated with the
// default grid; --quick shrinks the scales for the ctest smoke and the CI
// perf job. Compare two trajectory files with tools/perf-compare.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "stats/profiler.h"
#include "util/flags.h"
#include "workload/generator.h"

using namespace elastisim;

namespace {

struct Cell {
  std::size_t jobs;
  std::string scheduler;
};

/// Top-N phases by exclusive seconds, name-tiebroken for determinism.
json::Value top_phases_json(std::size_t top_n) {
  struct Row {
    const char* name;
    double exclusive_s;
  };
  std::vector<Row> rows;
  const auto& profiler = stats::profiler::Profiler::global();
  for (int i = 0; i < stats::profiler::kPhaseCount; ++i) {
    const auto phase = static_cast<stats::profiler::Phase>(i);
    rows.push_back({stats::profiler::phase_name(phase),
                    profiler.stats(phase).exclusive_s});
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    // elsim-lint: allow(float-equality) -- exact-tie fallback to name ordering
    if (a.exclusive_s != b.exclusive_s) return a.exclusive_s > b.exclusive_s;
    return std::string_view(a.name) < std::string_view(b.name);
  });
  json::Array out;
  for (std::size_t i = 0; i < std::min(top_n, rows.size()); ++i) {
    json::Object entry;
    entry["name"] = std::string(rows[i].name);
    entry["exclusive_s"] = rows[i].exclusive_s;
    out.push_back(json::Value(std::move(entry)));
  }
  return json::Value(std::move(out));
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bool quick = flags.get("quick", false);
  const std::string out_path = flags.get("out", std::string("BENCH_perf.json"));

  // The pinned grid. Scales are chosen so the full run finishes in under a
  // minute on a laptop while still spanning a 25x event-count range; --quick
  // keeps two scales per scheduler (the monotonicity smoke needs >= 2).
  const std::vector<std::size_t> scales =
      quick ? std::vector<std::size_t>{500, 2000}
            : std::vector<std::size_t>{2000, 10000, 50000};
  const std::vector<std::string> schedulers = {"easy-malleable", "fcfs"};
  constexpr std::uint64_t kSeed = 42;
  constexpr double kMalleableFraction = 0.5;

  const platform::ClusterConfig platform = bench::reference_platform(128);

  json::Array cells;
  for (const std::string& scheduler : schedulers) {
    for (std::size_t jobs : scales) {
      // Fresh profiled window per cell; enabling resets the accumulators.
      stats::profiler::set_enabled(true);
      auto generator = bench::reference_workload(kMalleableFraction, jobs, kSeed);
      const core::SimulationResult result =
          bench::run(platform, scheduler, workload::generate_workload(generator));
      stats::profiler::set_enabled(false);

      const double events_per_second =
          result.wall_seconds > 0.0
              ? static_cast<double>(result.events_processed) / result.wall_seconds
              : 0.0;
      json::Object cell;
      cell["jobs"] = jobs;
      cell["scheduler"] = scheduler;
      // Which grid the cell came from; perf-compare warns when a comparison
      // mixes quick and full cells (they are not like-for-like).
      cell["mode"] = std::string(quick ? "quick" : "full");
      cell["events"] = result.events_processed;
      cell["wall_s"] = result.wall_seconds;
      cell["events_per_second"] = events_per_second;
      cell["wall_s_per_10k_jobs"] =
          result.wall_seconds * 10000.0 / static_cast<double>(jobs);
      // Process-wide and monotone across cells: the last cell of each scale
      // column carries the honest high-water figure.
      cell["peak_rss_bytes"] = result.peak_rss_bytes;
      cell["queue_peak"] = result.queue_peak;
      cell["rebalances"] = result.rebalances;
      cell["scheduler_invocations"] = result.scheduler_invocations;
      cell["jobs_scanned"] = result.scheduler_jobs_scanned;
      cell["top_phases"] = top_phases_json(3);
      cells.push_back(json::Value(std::move(cell)));

      std::printf("%-16s %6zu jobs: %9llu events, %7.3f s, %10.0f events/s\n",
                  scheduler.c_str(), jobs,
                  static_cast<unsigned long long>(result.events_processed),
                  result.wall_seconds, events_per_second);
      if (result.stuck > 0 || result.finished + result.killed != result.submitted) {
        std::fprintf(stderr, "error: cell (%zu, %s) left %zu jobs unfinished\n", jobs,
                     scheduler.c_str(), result.stuck);
        return 1;
      }
    }
  }

  json::Object out;
  out["schema"] = std::string("elastisim-bench-perf-v1");
  out["build"] = stats::profiler::build_info_json();
  out["quick"] = quick;
  out["platform_nodes"] = std::size_t{128};
  out["seed"] = kSeed;
  out["malleable_fraction"] = kMalleableFraction;
  out["cells"] = json::Value(std::move(cells));
  json::write_file(out_path, json::Value(std::move(out)));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
