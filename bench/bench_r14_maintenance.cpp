// R14 (extension) — rolling maintenance window: a quarter of the machine is
// drained (gracefully, job-preserving) for a two-hour window in the middle
// of the campaign. Expected shape: under a rigid-only policy the capacity
// dip inflates waits for the whole window; a malleable-aware policy shrinks
// running jobs to absorb the dip and re-expands afterwards, recovering most
// of the makespan and much of the wait inflation.
#include "bench_common.h"

#include "core/batch_system.h"

using namespace elastisim;

int main() {
  bench::TelemetryScope telemetry("bench_r14_maintenance");
  const auto platform = bench::reference_platform();
  const auto generator = bench::reference_workload(/*malleable_fraction=*/0.5);

  bench::table_header(
      "R14 rolling maintenance (32/128 nodes drained t=7200..14400s, 50% malleable)",
      "scenario,scheduler,makespan_s,mean_wait_s,p90_wait_s,avg_utilization");
  for (const bool maintenance : {false, true}) {
    for (const char* scheduler : {"easy", "easy-malleable"}) {
      sim::Engine engine;
      stats::Recorder recorder;
      platform::Cluster cluster(engine, platform);
      core::BatchSystem batch(engine, cluster, core::make_scheduler(scheduler), recorder);
      batch.submit_all(workload::generate_workload(generator));
      if (maintenance) {
        for (platform::NodeId node = 0; node < 32; ++node) {
          batch.drain_node(node, 7200.0, 14400.0);
        }
      }
      engine.run();
      std::printf("%s,%s,%.0f,%.1f,%.1f,%.4f\n",
                  maintenance ? "maintenance" : "baseline", scheduler, recorder.makespan(),
                  recorder.mean_wait(), recorder.wait_percentile(0.9),
                  recorder.average_utilization());
    }
  }
  return 0;
}
