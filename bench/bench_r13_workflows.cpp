// R13 (extension) — workflow chains vs malleability: "afterok" dependency
// chains serialize work and punch holes into the schedule (a stage cannot
// start until its parent drains). Expected shape: makespan and utilization
// degrade as the chained fraction rises; a malleable-aware scheduler recovers
// much of the loss by expanding running jobs into the holes.
#include "bench_common.h"

using namespace elastisim;

int main() {
  bench::TelemetryScope telemetry("bench_r13_workflows");
  const auto platform = bench::reference_platform();

  bench::table_header(
      "R13 workflow chains vs malleability (50% malleable, 128 nodes, 200 jobs)",
      "chain_pct,scheduler,makespan_s,mean_wait_s,avg_utilization,expansions");
  for (const double chain : {0.0, 0.25, 0.5, 0.75}) {
    auto generator = bench::reference_workload(/*malleable_fraction=*/0.5);
    generator.chain_fraction = chain;
    for (const char* scheduler : {"easy", "easy-malleable"}) {
      auto result = bench::run(platform, scheduler, workload::generate_workload(generator));
      std::printf("%.0f,%s,%.0f,%.1f,%.4f,%d\n", chain * 100.0, scheduler, result.makespan,
                  result.recorder.mean_wait(), result.recorder.average_utilization(),
                  result.recorder.total_expansions());
    }
  }
  return 0;
}
