// R15 (extension) — checkpoint/restart economics: the reference workload with
// every job checkpointing, swept over checkpoint interval x per-node MTBF x
// failure policy. Expected shape: plain requeue discards whole attempts, so
// its lost node-seconds grow with job length and failure rate regardless of
// the checkpoint interval; requeue-restart bounds the loss to the tail behind
// the last checkpoint, so denser checkpoints trade checkpoint-write overhead
// against less redone work — with the sweet spot near the Young/Daly
// interval. Weibull wear-out (shape 1.5) shifts failures later but keeps the
// ordering.
#include "bench_common.h"

#include "core/batch_system.h"
#include "core/fault_injector.h"
#include "stats/metrics.h"

using namespace elastisim;

namespace {

struct Outcome {
  double makespan;
  int requeues;
  double lost_node_seconds;
  double redone_seconds;
  std::size_t killed;
  std::size_t unfinished;
};

Outcome run_case(core::FailurePolicy policy, int checkpoint_every, double mtbf_hours,
                 core::FailureDistribution dist) {
  const auto platform = bench::reference_platform();
  auto generator = bench::reference_workload(/*malleable_fraction=*/0.5);
  generator.checkpoint_fraction = 1.0;
  generator.checkpoint_bytes = 16.0 * 1024 * 1024 * 1024;
  generator.checkpoint_every = checkpoint_every;
  auto jobs = workload::generate_workload(generator);

  sim::Engine engine;
  stats::Recorder recorder;
  platform::Cluster cluster(engine, platform);
  core::BatchConfig batch_config;
  batch_config.failure_policy = policy;
  batch_config.restart_overhead = 30.0;
  core::BatchSystem batch(engine, cluster, core::make_scheduler("easy-malleable"), recorder,
                          batch_config);
  batch.submit_all(std::move(jobs));

  core::FaultModelConfig fault;
  fault.mtbf = mtbf_hours * 3600.0;
  fault.failure_distribution = dist;
  fault.weibull_shape = dist == core::FailureDistribution::kWeibull ? 1.5 : 1.0;
  fault.mean_repair = 1800.0;
  fault.horizon = 30000.0;
  fault.seed = 2026;
  core::FaultInjector injector(fault);
  core::FaultInjector::apply(batch, injector.generate(platform.node_count));

  engine.run();
  return Outcome{recorder.makespan(),
                 recorder.total_requeues(),
                 recorder.total_lost_node_seconds(),
                 recorder.total_redone_seconds(),
                 batch.killed_jobs(),
                 batch.queued_jobs() + batch.running_jobs()};
}

}  // namespace

int main() {
  bench::TelemetryScope telemetry("bench_r15_resilience");
  bench::table_header(
      "R15 checkpoint/restart economics (128 nodes, 200 jobs, 30 min repair, 30 s restart)",
      "dist,mtbf_h,ckpt_every,policy,makespan_s,requeues,lost_node_s,redone_s,killed,"
      "unfinished");
  const core::FailurePolicy policies[] = {core::FailurePolicy::kRequeue,
                                          core::FailurePolicy::kRequeueRestart};
  const core::FailureDistribution dists[] = {core::FailureDistribution::kExponential,
                                             core::FailureDistribution::kWeibull};
  for (const auto dist : dists) {
    for (const double mtbf_hours : {24.0, 96.0}) {
      for (const int every : {1, 4, 16}) {
        for (const auto policy : policies) {
          const auto outcome = run_case(policy, every, mtbf_hours, dist);
          std::printf("%s,%.0f,%d,%s,%.0f,%d,%.0f,%.0f,%zu,%zu\n",
                      core::to_string(dist).c_str(), mtbf_hours, every,
                      core::to_string(policy).c_str(), outcome.makespan, outcome.requeues,
                      outcome.lost_node_seconds, outcome.redone_seconds, outcome.killed,
                      outcome.unfinished);
        }
      }
    }
  }
  return 0;
}
