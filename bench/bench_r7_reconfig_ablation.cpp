// R7 — Reconfiguration-cost ablation: the same fully malleable workload with
// data redistribution disabled (free resizes) and with per-node state from
// 256 MiB to 16 GiB. Expected shape: the cost erodes the malleability gain
// smoothly; even multi-GiB state keeps malleable scheduling ahead of the
// rigid baseline, with a crossover only at implausible state sizes.
#include "bench_common.h"

using namespace elastisim;

int main() {
  bench::TelemetryScope telemetry("bench_r7_reconfig_ablation");
  const auto platform = bench::reference_platform();

  // Rigid baseline for reference.
  const auto baseline =
      bench::run(platform, "easy", workload::generate_workload(bench::reference_workload(1.0)));

  bench::table_header(
      "R7 reconfiguration-cost ablation (100% malleable, easy-malleable, 128 nodes)",
      "state_bytes_per_node,charged,makespan_s,mean_wait_s,expansions,shrinks,"
      "vs_rigid_easy_makespan");

  auto report = [&](double state_bytes, bool charged) {
    auto generator = bench::reference_workload(1.0);
    generator.state_bytes_per_node = state_bytes;
    core::BatchConfig batch;
    batch.charge_reconfiguration = charged;
    auto result = bench::run(platform, "easy-malleable",
                             workload::generate_workload(generator), batch);
    std::printf("%.0f,%s,%.0f,%.1f,%d,%d,%.3f\n", state_bytes, charged ? "yes" : "no",
                result.makespan, result.recorder.mean_wait(),
                result.recorder.total_expansions(), result.recorder.total_shrinks(),
                result.makespan / baseline.makespan);
  };

  report(0.0, false);  // free reconfiguration (upper bound on the gain)
  // 12.5 GB/s links move one node-share in ~0.02 s/GiB, so the cost only
  // rivals the ~60 s iterations once state reaches hundreds of GiB — the
  // sweep extends far enough to show the erosion and locate the crossover.
  for (const double gib : {0.25, 1.0, 4.0, 16.0, 64.0, 256.0, 1024.0}) {
    report(gib * 1024 * 1024 * 1024, true);
  }

  bench::table_header("R7 rigid reference", "scheduler,makespan_s");
  std::printf("easy,%.0f\n", baseline.makespan);
  return 0;
}
