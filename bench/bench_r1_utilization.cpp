// R1 — Cluster utilization over time: the same 50%-malleable workload under
// a malleability-blind scheduler (EASY) and a malleability-aware one
// (EASY + expand/shrink). The malleable-aware run fills the utilization
// valleys that rigid draining leaves behind.
//
// Output: one row per 10-minute bucket with both utilization series, then a
// summary block.
#include "bench_common.h"

using namespace elastisim;

int main() {
  bench::TelemetryScope telemetry("bench_r1_utilization");
  const auto platform = bench::reference_platform();
  const auto generator = bench::reference_workload(/*malleable_fraction=*/0.5);

  auto blind = bench::run(platform, "easy", workload::generate_workload(generator));
  auto aware = bench::run(platform, "easy-malleable", workload::generate_workload(generator));

  constexpr double kBucket = 600.0;
  const auto blind_series = blind.recorder.utilization_buckets(kBucket);
  const auto aware_series = aware.recorder.utilization_buckets(kBucket);

  bench::table_header("R1 utilization over time (50% malleable, 128 nodes, 200 jobs)",
                      "time_s,util_easy,util_easy_malleable");
  const std::size_t buckets = std::max(blind_series.size(), aware_series.size());
  for (std::size_t i = 0; i < buckets; ++i) {
    const double blind_util = i < blind_series.size() ? blind_series[i] : 0.0;
    const double aware_util = i < aware_series.size() ? aware_series[i] : 0.0;
    std::printf("%.0f,%.4f,%.4f\n", i * kBucket, blind_util, aware_util);
  }

  bench::table_header("R1 summary", "scheduler,makespan_s,avg_utilization");
  std::printf("easy,%.0f,%.4f\n", blind.makespan, blind.recorder.average_utilization());
  std::printf("easy-malleable,%.0f,%.4f\n", aware.makespan,
              aware.recorder.average_utilization());
  return 0;
}
