// R12 (extension) — ablation of the malleable policy's two mechanisms:
//   expand-only  — grow running jobs into idle nodes, never shrink,
//   shrink-only  — shrink running jobs to admit the queue head, never grow,
//   both         — the full easy-malleable policy,
//   neither      — plain EASY (baseline).
// Expected shape: expansion drives the makespan gain (it converts idle
// capacity into progress); shrinking drives the wait-time gain (it admits
// queued jobs early); the full policy gets both.
#include "bench_common.h"

#include "core/schedulers.h"

using namespace elastisim;

namespace {

class AblatedScheduler final : public core::Scheduler {
 public:
  AblatedScheduler(bool expand, bool shrink) : expand_(expand), shrink_(shrink) {}

  std::string name() const override { return "easy-malleable-ablated"; }

  void schedule(core::SchedulerContext& ctx) override {
    while (core::passes::easy_backfill_round(ctx)) {
    }
    if (shrink_) core::passes::shrink_to_admit_head(ctx);
    if (expand_) core::passes::expand_into_idle(ctx);
  }

 private:
  bool expand_;
  bool shrink_;
};

}  // namespace

int main() {
  bench::TelemetryScope telemetry("bench_r12_policy_ablation");
  const auto platform = bench::reference_platform();
  const auto generator = bench::reference_workload(/*malleable_fraction=*/0.75);

  bench::table_header(
      "R12 malleable-mechanism ablation (75% malleable, 128 nodes, 200 jobs)",
      "variant,makespan_s,mean_wait_s,median_wait_s,avg_utilization,expansions,shrinks");
  const struct {
    const char* name;
    bool expand;
    bool shrink;
  } variants[] = {
      {"neither (easy)", false, false},
      {"expand-only", true, false},
      {"shrink-only", false, true},
      {"both (easy-malleable)", true, true},
  };
  for (const auto& variant : variants) {
    sim::Engine engine;
    stats::Recorder recorder;
    platform::Cluster cluster(engine, platform);
    core::BatchSystem batch(engine, cluster,
                            std::make_unique<AblatedScheduler>(variant.expand, variant.shrink),
                            recorder);
    batch.submit_all(workload::generate_workload(generator));
    engine.run();
    std::printf("%s,%.0f,%.1f,%.1f,%.4f,%d,%d\n", variant.name, recorder.makespan(),
                recorder.mean_wait(), recorder.median_wait(),
                recorder.average_utilization(), recorder.total_expansions(),
                recorder.total_shrinks());
  }
  return 0;
}
