// R10 (extension) — resilience under node failures: the same workload
// exposed to an increasing node-failure rate, under both failure policies
// (kill vs requeue) and under rigid vs malleable scheduling. Expected shape:
// requeueing converts job losses into extra waiting; makespan overhead grows
// with the failure rate; the malleable scheduler absorbs lost capacity more
// gracefully because survivors shrink/expand around the holes.
#include "bench_common.h"

#include "core/batch_system.h"
#include "core/fault_injector.h"

using namespace elastisim;

namespace {

struct Outcome {
  double makespan;
  double mean_wait;
  std::size_t killed;
  std::size_t requeues;
  std::size_t unfinished;
};

Outcome run_with_failures(const std::string& scheduler, core::FailurePolicy policy,
                          double failures_per_hour, double malleable_fraction) {
  const auto platform = bench::reference_platform();
  auto generator = bench::reference_workload(malleable_fraction);
  auto jobs = workload::generate_workload(generator);

  sim::Engine engine;
  stats::Recorder recorder;
  platform::Cluster cluster(engine, platform);
  core::BatchConfig batch_config;
  batch_config.failure_policy = policy;
  core::BatchSystem batch(engine, cluster, core::make_scheduler(scheduler), recorder,
                          batch_config);
  batch.submit_all(std::move(jobs));

  // Exponential failures over the expected horizon; each node returns to
  // service after a 30-minute repair. The cluster-wide rate maps onto the
  // injector's per-node MTBF (superposed renewal processes).
  if (failures_per_hour > 0.0) {
    core::FaultModelConfig fault;
    fault.mtbf = static_cast<double>(platform.node_count) * 3600.0 / failures_per_hour;
    fault.mean_repair = 1800.0;
    fault.horizon = 30000.0;
    fault.seed = 2026;
    core::FaultInjector injector(fault);
    core::FaultInjector::apply(batch, injector.generate(platform.node_count));
  }
  engine.run();
  return Outcome{recorder.makespan(), recorder.mean_wait(), batch.killed_jobs(),
                 batch.requeued_jobs(), batch.queued_jobs() + batch.running_jobs()};
}

}  // namespace

int main() {
  bench::TelemetryScope telemetry("bench_r10_failures");
  bench::table_header(
      "R10 resilience under node failures (128 nodes, 200 jobs, 30 min repair)",
      "failures_per_hour,scheduler,policy,makespan_s,mean_wait_s,killed,requeues,unfinished");
  for (const double rate : {0.0, 1.0, 4.0, 16.0}) {
    for (const char* scheduler : {"easy", "easy-malleable"}) {
      for (const auto policy : {core::FailurePolicy::kKill, core::FailurePolicy::kRequeue}) {
        const auto outcome =
            run_with_failures(scheduler, policy, rate, /*malleable_fraction=*/0.5);
        std::printf("%.0f,%s,%s,%.0f,%.1f,%zu,%zu,%zu\n", rate, scheduler,
                    core::to_string(policy).c_str(), outcome.makespan, outcome.mean_wait,
                    outcome.killed, outcome.requeues, outcome.unfinished);
      }
    }
  }
  return 0;
}
