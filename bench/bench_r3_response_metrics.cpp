// R3 — Response-time metrics vs malleable fraction: mean/median/max wait,
// mean turnaround, and mean bounded slowdown under EASY vs EASY-malleable.
// Waits shrink as malleability rises because running jobs yield nodes to the
// queue instead of forcing arrivals to wait for full drains.
#include "bench_common.h"

using namespace elastisim;

int main() {
  bench::TelemetryScope telemetry("bench_r3_response_metrics");
  const auto platform = bench::reference_platform();

  bench::table_header(
      "R3 response metrics vs malleable fraction (128 nodes, 200 jobs)",
      "malleable_pct,scheduler,mean_wait_s,median_wait_s,max_wait_s,mean_turnaround_s,"
      "mean_bounded_slowdown");
  for (const double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto generator = bench::reference_workload(fraction);
    for (const char* scheduler : {"easy", "easy-malleable"}) {
      auto result = bench::run(platform, scheduler, workload::generate_workload(generator));
      const stats::Recorder& recorder = result.recorder;
      std::printf("%.0f,%s,%.1f,%.1f,%.1f,%.1f,%.2f\n", fraction * 100.0, scheduler,
                  recorder.mean_wait(), recorder.median_wait(), recorder.max_wait(),
                  recorder.mean_turnaround(), recorder.mean_bounded_slowdown());
    }
  }
  return 0;
}
