// Shared setup for the experiment harnesses (bench_r*): the reference
// evaluation platform, workload factories, and table printing.
//
// Every harness prints a self-describing CSV block to stdout so EXPERIMENTS.md
// and downstream plotting scripts can consume the rows directly.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <algorithm>

#include "core/simulation.h"
#include "json/json.h"
#include "platform/cluster.h"
#include "stats/journal.h"
#include "stats/profiler.h"
#include "stats/state_sampler.h"
#include "stats/telemetry.h"
#include "workload/generator.h"

namespace elastisim::bench {

namespace detail {
/// Event-queue high-water mark across every bench::run() in this process —
/// the capacity figure the TelemetryScope summary reports next to peak RSS.
inline std::uint64_t& queue_high_water() {
  static std::uint64_t mark = 0;
  return mark;
}
}  // namespace detail

/// The reference cluster used across experiments: 128 nodes, 48 x 2 GF cores,
/// 12.5 GB/s injection links, fat-tree pods of 16 with 100 GB/s uplinks, and
/// a 120/80 GB/s PFS.
inline platform::ClusterConfig reference_platform(std::size_t nodes = 128) {
  platform::ClusterConfig config;
  config.topology = platform::TopologyKind::kFatTree;
  config.node_count = nodes;
  config.cores_per_node = 48;
  config.flops_per_core = 2e9;
  config.link_bandwidth = 12.5e9;
  config.pod_size = 16;
  config.pod_bandwidth = 100e9;
  config.pfs.read_bandwidth = 120e9;
  config.pfs.write_bandwidth = 80e9;
  return config;
}

/// The reference workload: 200 jobs, 1-64 node power-of-two sizes, iterative
/// compute + allreduce applications, 30% with I/O phases. `malleable_fraction`
/// is the evaluation's main axis.
inline workload::GeneratorConfig reference_workload(double malleable_fraction,
                                                    std::size_t jobs = 200,
                                                    std::uint64_t seed = 42) {
  workload::GeneratorConfig config;
  config.job_count = jobs;
  config.seed = seed;
  config.mean_interarrival = 45.0;
  config.min_nodes = 1;
  config.max_nodes = 64;
  config.malleable_fraction = malleable_fraction;
  config.mean_iteration_compute = 60.0;
  config.flops_per_node = 48.0 * 2e9;
  config.comm_bytes = 64.0 * 1024 * 1024;
  config.io_fraction = 0.3;
  config.io_bytes = 4.0 * 1024 * 1024 * 1024;
  config.state_bytes_per_node = 256.0 * 1024 * 1024;
  return config;
}

/// Directory from ELSIM_BENCH_JOURNAL ("1" = working directory), empty when
/// the variable is unset — the opt-in switch for per-run decision journals.
inline const std::string& journal_dir() {
  static const std::string dir = [] {
    const char* raw = std::getenv("ELSIM_BENCH_JOURNAL");
    if (!raw || !*raw) return std::string();
    return std::string(raw) == "1" ? std::string(".") : std::string(raw);
  }();
  return dir;
}

/// Directory from ELSIM_BENCH_TIMESERIES ("1" = working directory), empty
/// when unset — the opt-in switch for per-run state timelines
/// (<dir>/<scheduler>.<n>.timeseries.csv, the format behind
/// `elastisim report`).
inline const std::string& timeseries_dir() {
  static const std::string dir = [] {
    const char* raw = std::getenv("ELSIM_BENCH_TIMESERIES");
    if (!raw || !*raw) return std::string();
    return std::string(raw) == "1" ? std::string(".") : std::string(raw);
  }();
  return dir;
}

inline core::SimulationResult run(const platform::ClusterConfig& platform,
                                  const std::string& scheduler,
                                  std::vector<workload::Job> jobs,
                                  core::BatchConfig batch = {}) {
  core::SimulationConfig config;
  config.platform = platform;
  config.scheduler = scheduler;
  config.batch = batch;
  stats::DecisionJournal journal;
  if (!journal_dir().empty()) config.journal = &journal;
  stats::StateSampler sampler;
  if (!timeseries_dir().empty()) config.sampler = &sampler;
  const double wall_begin = telemetry::enabled() ? telemetry::wall_now() : 0.0;
  core::SimulationResult result = core::run_simulation(config, std::move(jobs));
  detail::queue_high_water() = std::max(detail::queue_high_water(), result.queue_peak);
  if (config.sampler) {
    // Numbered like the journals: <dir>/<scheduler>.<n>.timeseries.csv.
    static int sample_index = 0;
    const std::string path = timeseries_dir() + "/" + scheduler + "." +
                             std::to_string(sample_index++) + ".timeseries.csv";
    try {
      std::filesystem::create_directories(timeseries_dir());
      sampler.save(path);
      std::fprintf(stderr, "timeseries: wrote %s (%zu samples)\n", path.c_str(),
                   sampler.samples().size());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "timeseries: write failed: %s\n", error.what());
    }
  }
  if (config.journal) {
    // One journal per bench::run(), numbered in call order:
    //   <dir>/<scheduler>.<n>.journal.jsonl
    static int run_index = 0;
    const std::string path = journal_dir() + "/" + scheduler + "." +
                             std::to_string(run_index++) + ".journal.jsonl";
    try {
      std::filesystem::create_directories(journal_dir());
      journal.save(path);
      std::fprintf(stderr, "journal: wrote %s (%zu records)\n", path.c_str(),
                   journal.size());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "journal: write failed: %s\n", error.what());
    }
  }
  if (telemetry::enabled()) {
    auto& registry = telemetry::Registry::global();
    registry.counter("bench.runs").add();
    registry.counter("bench.events").add(result.events_processed);
    registry.histogram("bench.run_seconds").record(telemetry::wall_now() - wall_begin);
    registry.spans().add("bench.run (" + scheduler + ")", wall_begin,
                         telemetry::wall_now() - wall_begin, result.events_processed);
  }
  return result;
}

/// Opt-in telemetry for the experiment harnesses: when the environment
/// variable ELSIM_BENCH_TELEMETRY is set, enables collection for the
/// harness's lifetime and writes <dir>/<name>.telemetry.json on destruction
/// (the variable's value is the directory; "1" means the working directory).
/// Every bench::run() records events/sec and per-run phase histograms, so
/// any bench_r* binary can be profiled without a rebuild:
///   ELSIM_BENCH_TELEMETRY=out ./bench_r3_scheduler_comparison
class TelemetryScope {
 public:
  explicit TelemetryScope(std::string name) : name_(std::move(name)) {
    const char* dir = std::getenv("ELSIM_BENCH_TELEMETRY");
    if (!dir || !*dir) return;
    dir_ = std::string(dir) == "1" ? "." : dir;
    telemetry::set_enabled(true);
    start_ = telemetry::wall_now();
  }
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

  ~TelemetryScope() {
    if (dir_.empty()) return;
    auto& registry = telemetry::Registry::global();
    const double wall = telemetry::wall_now() - start_;
    const auto events = registry.counter("bench.events").value();
    json::Object out;
    out["bench"] = name_;
    out["wall_seconds"] = wall;
    out["events"] = static_cast<std::int64_t>(events);
    out["events_per_second"] = wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
    out["peak_rss_bytes"] = static_cast<std::int64_t>(stats::profiler::peak_rss_bytes());
    out["queue_peak"] = static_cast<std::int64_t>(detail::queue_high_water());
    out["registry"] = registry.to_json();
    try {
      std::filesystem::create_directories(dir_);
      json::write_file(dir_ + "/" + name_ + ".telemetry.json",
                       json::Value(std::move(out)));
      std::fprintf(stderr, "telemetry: wrote %s/%s.telemetry.json\n", dir_.c_str(),
                   name_.c_str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "telemetry: write failed: %s\n", error.what());
    }
  }

 private:
  std::string name_;
  std::string dir_;
  double start_ = 0.0;
};

/// Prints "# <title>" followed by a CSV header — the harness convention.
inline void table_header(const std::string& title, const std::string& columns) {
  std::printf("# %s\n%s\n", title.c_str(), columns.c_str());
}

}  // namespace elastisim::bench
