// Shared setup for the experiment harnesses (bench_r*): the reference
// evaluation platform, workload factories, and table printing.
//
// Every harness prints a self-describing CSV block to stdout so EXPERIMENTS.md
// and downstream plotting scripts can consume the rows directly.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/simulation.h"
#include "platform/cluster.h"
#include "workload/generator.h"

namespace elastisim::bench {

/// The reference cluster used across experiments: 128 nodes, 48 x 2 GF cores,
/// 12.5 GB/s injection links, fat-tree pods of 16 with 100 GB/s uplinks, and
/// a 120/80 GB/s PFS.
inline platform::ClusterConfig reference_platform(std::size_t nodes = 128) {
  platform::ClusterConfig config;
  config.topology = platform::TopologyKind::kFatTree;
  config.node_count = nodes;
  config.cores_per_node = 48;
  config.flops_per_core = 2e9;
  config.link_bandwidth = 12.5e9;
  config.pod_size = 16;
  config.pod_bandwidth = 100e9;
  config.pfs.read_bandwidth = 120e9;
  config.pfs.write_bandwidth = 80e9;
  return config;
}

/// The reference workload: 200 jobs, 1-64 node power-of-two sizes, iterative
/// compute + allreduce applications, 30% with I/O phases. `malleable_fraction`
/// is the evaluation's main axis.
inline workload::GeneratorConfig reference_workload(double malleable_fraction,
                                                    std::size_t jobs = 200,
                                                    std::uint64_t seed = 42) {
  workload::GeneratorConfig config;
  config.job_count = jobs;
  config.seed = seed;
  config.mean_interarrival = 45.0;
  config.min_nodes = 1;
  config.max_nodes = 64;
  config.malleable_fraction = malleable_fraction;
  config.mean_iteration_compute = 60.0;
  config.flops_per_node = 48.0 * 2e9;
  config.comm_bytes = 64.0 * 1024 * 1024;
  config.io_fraction = 0.3;
  config.io_bytes = 4.0 * 1024 * 1024 * 1024;
  config.state_bytes_per_node = 256.0 * 1024 * 1024;
  return config;
}

inline core::SimulationResult run(const platform::ClusterConfig& platform,
                                  const std::string& scheduler,
                                  std::vector<workload::Job> jobs,
                                  core::BatchConfig batch = {}) {
  core::SimulationConfig config;
  config.platform = platform;
  config.scheduler = scheduler;
  config.batch = batch;
  return core::run_simulation(config, std::move(jobs));
}

/// Prints "# <title>" followed by a CSV header — the harness convention.
inline void table_header(const std::string& title, const std::string& columns) {
  std::printf("# %s\n%s\n", title.c_str(), columns.c_str());
}

}  // namespace elastisim::bench
